#include "core/system.h"

#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "reader/ack_detector.h"
#include "tag/modulator.h"
#include "util/check.h"
#include "util/crc.h"

namespace wb::core {

WiFiBackscatterSystem::WiFiBackscatterSystem(const SystemConfig& cfg)
    : cfg_(cfg) {
  WB_REQUIRE(cfg.tag_reader_distance_m > Meters{},
             "tag-reader distance must be positive");
  WB_REQUIRE(cfg.helper_distance_m > Meters{},
             "helper distance must be positive");
  WB_REQUIRE(cfg.helper_pps > 0.0, "helper traffic rate must be positive");
  WB_REQUIRE(cfg.packets_per_bit > 0.0);
  WB_REQUIRE(cfg.downlink_slot_us > TimeUs{});
  WB_REQUIRE(cfg.max_query_attempts > 0);
}

double WiFiBackscatterSystem::commanded_bit_rate() const {
  RateControl rc(RateControlParams{cfg_.packets_per_bit, 0.8});
  return rc.choose_bit_rate(cfg_.helper_pps);
}

DownlinkOutcome WiFiBackscatterSystem::send_downlink(const BitVec& data) {
  DownlinkOutcome out;
  out.attempts = 1;

  reader::DownlinkEncoderConfig enc_cfg;
  enc_cfg.slot_us = cfg_.downlink_slot_us;
  reader::DownlinkEncoder encoder(enc_cfg);
  const BitVec message = build_downlink_frame(data);
  const auto tx = encoder.encode(message, /*start_us=*/TimeUs{2'000});

  DownlinkSimConfig sim_cfg;
  sim_cfg.reader_tag_distance_m = cfg_.tag_reader_distance_m;
  sim_cfg.ambient_distance_m = cfg_.helper_distance_m;
  sim_cfg.detector = cfg_.detector;
  sim_cfg.mcu.bit_duration_us = cfg_.downlink_slot_us;
  sim_cfg.mcu.payload_bits = kDownlinkPayloadBits;
  sim_cfg.seed = cfg_.seed ^ (0x9e3779b9u + round_++);

  // Ambient helper traffic keeps flowing around the reserved window.
  sim::RngStream traffic_rng(sim_cfg.seed);
  auto rng = traffic_rng.fork("downlink-ambient");
  const TimeUs until = tx.end_us + TimeUs{5'000};
  const auto ambient = wifi::make_poisson_timeline(
      cfg_.helper_pps, until, wifi::TrafficParams{}, rng);

  DownlinkSim sim(sim_cfg);
  const auto report = sim.run(tx, ambient, until);
  out.tag_energy_uj = report.detector_energy_uj + report.mcu_energy_uj;
  out.simulated_us = until;

  for (const auto& frame : report.decoded) {
    if (auto data_bits = parse_downlink_payload(frame.payload)) {
      out.delivered = true;
      out.decoded_query = Query::from_bits(*data_bits);
      break;
    }
  }
  if (auto* fx = obs::forensics()) {
    fx->record_attempt(obs::DropStage::kCoreDownlink);
    if (out.delivered) {
      fx->record_decode(obs::DropStage::kCoreDownlink);
    } else {
      // No tag-side frame at all means the energy detector never fired;
      // frames that decoded but failed to parse died on the checksum.
      fx->record_drop(obs::DropStage::kCoreDownlink,
                      report.decoded.empty() ? obs::DropReason::kNoPreamble
                                             : obs::DropReason::kCrcFail);
    }
  }
  return out;
}

UplinkOutcome WiFiBackscatterSystem::receive_uplink(const BitVec& data,
                                                    double bit_rate_bps) {
  UplinkOutcome out;
  out.bit_rate_bps = bit_rate_bps;
  WB_REQUIRE(bit_rate_bps > 0.0, "uplink bit rate must be positive");

  const auto bit_us = TimeUs::from_us(1e6 / bit_rate_bps);
  const BitVec frame = build_uplink_frame(data);

  // Geometry: reader at origin, tag on the x axis, helper beyond it.
  UplinkSimConfig sim_cfg;
  sim_cfg.channel.reader_pos = {0.0, 0.0};
  sim_cfg.channel.tag_pos = {cfg_.tag_reader_distance_m.value(), 0.0};
  sim_cfg.channel.helper_pos = {
      (cfg_.tag_reader_distance_m + cfg_.helper_distance_m).value(), 0.0};
  sim_cfg.channel.multipath = cfg_.multipath;
  sim_cfg.channel.drift = cfg_.drift;
  sim_cfg.channel.tag = cfg_.tag_reflection;
  sim_cfg.nic = cfg_.nic;
  sim_cfg.seed = cfg_.seed ^ (0xc2b2ae35u + round_++);

  const TimeUs frame_start{50'000};
  const TimeUs frame_dur =
      bit_us * static_cast<std::int64_t>(frame.size());
  const TimeUs until = frame_start + frame_dur + TimeUs{50'000};
  out.simulated_us = until;

  sim::RngStream traffic_rng(sim_cfg.seed);
  auto rng = traffic_rng.fork("uplink-traffic");
  const auto timeline = wifi::make_poisson_timeline(
      cfg_.helper_pps, until, wifi::TrafficParams{}, rng);

  tag::Modulator mod(frame, bit_us, frame_start);
  UplinkSim sim(sim_cfg);
  const auto trace = sim.run(timeline, mod);

  reader::UplinkDecoderConfig dec_cfg;
  dec_cfg.source = cfg_.uplink_source;
  if (cfg_.uplink_source == reader::MeasurementSource::kRssi) {
    dec_cfg = reader::rssi_decoder_config(dec_cfg);
  }
  dec_cfg.preamble = uplink_preamble();
  dec_cfg.payload_bits = uplink_payload_bits(data.size());
  dec_cfg.bit_duration_us = bit_us;
  reader::UplinkDecoder decoder(dec_cfg);
  const auto result = decoder.decode(trace);

  auto* fx = obs::forensics();
  if (fx != nullptr) fx->record_attempt(obs::DropStage::kCoreUplink);

  out.sync_found = result.found;
  if (!result.found) {
    // Propagate the decoder's own diagnosis onto the protocol-level
    // stage (the decoder already recorded it against reader.uplink).
    if (fx != nullptr) {
      fx->record_drop(obs::DropStage::kCoreUplink,
                      result.drop_reason.value_or(
                          obs::DropReason::kNoPreamble));
    }
    return out;
  }

  // Oracle BER against what the tag actually sent (frame minus preamble).
  const BitVec sent_payload(frame.begin() + static_cast<long>(
                                                uplink_preamble().size()),
                            frame.end());
  out.bits_total = sent_payload.size();
  out.bit_errors = hamming_distance(sent_payload, result.payload);

  if (auto parsed = parse_uplink_payload(result.payload, data.size())) {
    out.delivered = true;
    out.data = std::move(*parsed);
    if (fx != nullptr) fx->record_decode(obs::DropStage::kCoreUplink);
  } else if (fx != nullptr) {
    // Bits came out of the decoder but the frame checksum rejected them.
    fx->record_drop(obs::DropStage::kCoreUplink, obs::DropReason::kCrcFail);
  }
  return out;
}

bool WiFiBackscatterSystem::exchange_ack(bool tag_acks) {
  reader::AckConfig ack;

  UplinkSimConfig sim_cfg;
  sim_cfg.channel.reader_pos = {0.0, 0.0};
  sim_cfg.channel.tag_pos = {cfg_.tag_reader_distance_m.value(), 0.0};
  sim_cfg.channel.helper_pos = {
      (cfg_.tag_reader_distance_m + cfg_.helper_distance_m).value(), 0.0};
  sim_cfg.channel.multipath = cfg_.multipath;
  sim_cfg.channel.drift = cfg_.drift;
  sim_cfg.channel.tag = cfg_.tag_reflection;
  sim_cfg.nic = cfg_.nic;
  sim_cfg.seed = cfg_.seed ^ (0x85ebca6bu + round_++);

  const TimeUs ack_start{500'000};
  const TimeUs until = ack_start + ack.duration_us() + TimeUs{50'000};
  sim::RngStream traffic_rng(sim_cfg.seed);
  auto rng = traffic_rng.fork("ack-traffic");
  const auto timeline = wifi::make_poisson_timeline(
      cfg_.helper_pps, until, wifi::TrafficParams{}, rng);

  UplinkSim sim(sim_cfg);
  wifi::CaptureTrace trace;
  if (tag_acks) {
    tag::Modulator mod(ack.pattern, ack.chip_duration_us, ack_start);
    trace = sim.run(timeline, mod);
  } else {
    trace = sim.run_idle(timeline);
  }
  return reader::detect_ack(trace, ack, ack_start).detected;
}

QueryOutcome WiFiBackscatterSystem::query(const Query& query,
                                          const BitVec& tag_data) {
  QueryOutcome out;
  auto* m = obs::metrics();
  auto* tr = obs::tracer();
  auto* rec = obs::recorder();
  if (m != nullptr) m->counter("core.system.queries_total").add(1);
  if (rec != nullptr) {
    rec->log(TimeUs{0}, obs::Severity::kInfo, "core.system", "query_start",
             {{"max_attempts",
               static_cast<double>(cfg_.max_query_attempts)}});
  }

  // Rate control: fold the commanded rate into the query frame.
  RateControl rc(RateControlParams{cfg_.packets_per_bit, 0.8});
  const double rate = rc.choose_bit_rate(cfg_.helper_pps);
  Query q = query;
  q.bitrate_code = rc.rate_code(rate);

  // Each protocol leg runs its own sub-simulation with a virtual clock
  // starting at 0; for tracing, `cursor` stitches the legs onto one
  // protocol timeline (ScopedTraceOffset shifts the inner events).
  TimeUs cursor{0};
  const int proto_lane = tr != nullptr ? tr->lane("protocol") : 0;

  // The reader re-transmits its query until it gets a (CRC-valid)
  // response, §4.1 — a retry covers both a missed query at the tag and a
  // response the reader failed to decode.
  for (std::size_t attempt = 1; attempt <= cfg_.max_query_attempts;
       ++attempt) {
    DownlinkOutcome dl;
    {
      obs::ScopedTraceOffset shift(cursor);
      dl = send_downlink(q.to_bits());
    }
    if (tr != nullptr) {
      tr->complete(proto_lane, "downlink_query", "core", cursor,
                   dl.simulated_us,
                   {{"attempt", static_cast<double>(attempt)},
                    {"delivered", dl.delivered ? 1.0 : 0.0}});
    }
    if (rec != nullptr) {
      rec->log(cursor, dl.delivered ? obs::Severity::kInfo
                                    : obs::Severity::kWarn,
               "core.system", "downlink_query",
               {{"attempt", static_cast<double>(attempt)},
                {"delivered", dl.delivered ? 1.0 : 0.0}});
    }
    cursor += dl.simulated_us;
    out.downlink.attempts = attempt;
    out.downlink.delivered = dl.delivered;
    if (dl.decoded_query) out.downlink.decoded_query = dl.decoded_query;
    out.downlink.tag_energy_uj += dl.tag_energy_uj;
    if (cfg_.ack_enabled) {
      // The tag only ACKs a CRC-valid query; the reader retries on a
      // missing ACK without burning a response timeout.
      // exchange_ack simulates [0, ack_start + ack duration + guard)
      // with the defaults below; mirror that window for the timeline.
      const reader::AckConfig ack;
      const TimeUs ack_dur =
          TimeUs{500'000} + ack.duration_us() + TimeUs{50'000};
      bool detected = false;
      {
        obs::ScopedTraceOffset shift(cursor);
        detected = exchange_ack(dl.delivered);
      }
      if (tr != nullptr) {
        tr->complete(proto_lane, "ack_exchange", "core", cursor, ack_dur,
                     {{"detected", detected ? 1.0 : 0.0}});
      }
      if (rec != nullptr) {
        rec->log(cursor, detected ? obs::Severity::kInfo
                                  : obs::Severity::kWarn,
                 "core.system", "ack_exchange",
                 {{"detected", detected ? 1.0 : 0.0}});
      }
      cursor += ack_dur;
      out.downlink.ack_detected = detected;
      if (!detected) continue;
    }
    if (!dl.delivered) continue;

    // The tag obeys the bit rate it decoded.
    const double tag_rate =
        RateControl::rate_from_code(dl.decoded_query->bitrate_code);
    UplinkOutcome ul;
    {
      obs::ScopedTraceOffset shift(cursor);
      ul = receive_uplink(tag_data, tag_rate);
    }
    if (tr != nullptr) {
      tr->complete(proto_lane, "uplink_response", "core", cursor,
                   ul.simulated_us,
                   {{"delivered", ul.delivered ? 1.0 : 0.0},
                    {"bit_rate_bps", ul.bit_rate_bps}});
    }
    if (rec != nullptr) {
      rec->log(cursor, ul.delivered ? obs::Severity::kInfo
                                    : obs::Severity::kWarn,
               "core.system", "uplink_response",
               {{"delivered", ul.delivered ? 1.0 : 0.0},
                {"bit_rate_bps", ul.bit_rate_bps}});
    }
    cursor += ul.simulated_us;
    out.uplink = ul;
    if (out.uplink.delivered) break;
  }

  if (m != nullptr) {
    m->counter("core.system.downlink_attempts_total")
        .add(out.downlink.attempts);
    m->counter("core.system.query_retries_total")
        .add(out.downlink.attempts - 1);
    if (out.success()) m->counter("core.system.query_success_total").add(1);
    m->counter("core.system.uplink_bits_delivered_total")
        .add(out.uplink.bits_total);
    m->counter("core.system.uplink_bit_errors_total")
        .add(out.uplink.bit_errors);
    m->gauge("core.system.tag_energy_uj").add(out.downlink.tag_energy_uj);
  }
  return out;
}

}  // namespace wb::core
