#include "core/rate_control.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace wb::core {

double RateControl::measured_packet_rate(const wifi::CaptureTrace& trace,
                                         TimeUs window_us) {
  if (trace.empty() || window_us <= 0) return 0.0;
  const TimeUs end = trace.back().timestamp_us;
  const TimeUs from = end - window_us;
  std::size_t n = 0;
  for (auto it = trace.rbegin(); it != trace.rend(); ++it) {
    if (it->timestamp_us < from) break;
    ++n;
  }
  const double pps = static_cast<double>(n) /
                     (static_cast<double>(window_us) / 1e6);
  if (auto* m = obs::metrics()) {
    m->gauge("core.rate_control.measured_pps").set(pps);
  }
  return pps;
}

double RateControl::raw_rate_bps(double helper_pps) const {
  WB_REQUIRE(params_.packets_per_bit > 0.0);
  return helper_pps / params_.packets_per_bit;
}

double RateControl::choose_bit_rate(double helper_pps) const {
  const double budget = params_.safety * raw_rate_bps(helper_pps);
  double chosen = kSupportedBitRates.front();
  for (double r : kSupportedBitRates) {
    if (r <= budget) chosen = r;
  }
  if (auto* m = obs::metrics()) {
    m->counter("core.rate_control.choices_total").add(1);
    m->gauge("core.rate_control.chosen_bps").set(chosen);
  }
  return chosen;
}

std::uint8_t RateControl::rate_code(double bit_rate_bps) const {
  for (std::size_t i = 0; i < kSupportedBitRates.size(); ++i) {
    if (kSupportedBitRates[i] == bit_rate_bps) {
      return static_cast<std::uint8_t>(i);
    }
  }
  return 0;
}

double RateControl::rate_from_code(std::uint8_t code) {
  return kSupportedBitRates[std::min<std::size_t>(
      code, kSupportedBitRates.size() - 1)];
}

}  // namespace wb::core
