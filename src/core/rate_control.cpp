#include "core/rate_control.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace wb::core {

double RateControl::measured_packet_rate(const wifi::CaptureTrace& trace,
                                         TimeUs window_us) {
  if (trace.empty() || window_us <= TimeUs{}) return 0.0;
  const TimeUs end = trace.back().timestamp_us;
  // Clamp the averaging span to what the trace actually covers: dividing
  // by the full window when the capture is shorter silently under-reports
  // the rate (0.5 s of packets averaged over a 1 s window halves it).
  const TimeUs effective_us =
      std::min(window_us, end - trace.front().timestamp_us);
  if (effective_us <= TimeUs{}) return 0.0;
  const TimeUs from = end - effective_us;
  // Half-open window (from, end]: a packet exactly at `from` belongs to
  // the previous window, so the span covers exactly the counted packets'
  // inter-arrival gaps and a steady stream measures its true rate.
  std::size_t n = 0;
  for (auto it = trace.rbegin(); it != trace.rend(); ++it) {
    if (it->timestamp_us <= from) break;
    ++n;
  }
  const double pps = static_cast<double>(n) /
                     (static_cast<double>(effective_us.ticks()) / 1e6);
  if (auto* m = obs::metrics()) {
    m->gauge("core.rate_control.measured_pps").set(pps);
  }
  return pps;
}

double RateControl::raw_rate_bps(double helper_pps) const {
  WB_REQUIRE(params_.packets_per_bit > 0.0);
  return helper_pps / params_.packets_per_bit;
}

double RateControl::choose_bit_rate(double helper_pps) const {
  const double budget = params_.safety * raw_rate_bps(helper_pps);
  double chosen = kSupportedBitRates.front();
  for (double r : kSupportedBitRates) {
    if (r <= budget) chosen = r;
  }
  if (auto* m = obs::metrics()) {
    m->counter("core.rate_control.choices_total").add(1);
    m->gauge("core.rate_control.chosen_bps").set(chosen);
  }
  return chosen;
}

std::uint8_t RateControl::rate_code(double bit_rate_bps) const {
  // Locate the rate by the same index scan choose_bit_rate uses (largest
  // supported rate not above the argument) rather than bare float ==.
  std::size_t idx = kSupportedBitRates.size();
  for (std::size_t i = 0; i < kSupportedBitRates.size(); ++i) {
    if (kSupportedBitRates[i] <= bit_rate_bps) idx = i;
  }
  // An unknown rate is a caller bug: silently coding it as the slowest
  // rate (the old behaviour) made the tag transmit at a rate the reader
  // never chose and nothing downstream could tell.
  WB_REQUIRE(idx < kSupportedBitRates.size() &&
                 kSupportedBitRates[idx] == bit_rate_bps,
             "rate_code requires one of kSupportedBitRates");
  return static_cast<std::uint8_t>(idx);
}

double RateControl::rate_from_code(std::uint8_t code) {
  return kSupportedBitRates[std::min<std::size_t>(
      code, kSupportedBitRates.size() - 1)];
}

}  // namespace wb::core
