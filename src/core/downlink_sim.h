// End-to-end downlink simulation: reader packet-presence encoding ->
// received OFDM envelope at the tag -> analog energy detector -> MCU
// preamble matching and bit sampling.
//
// The simulator advances the detector circuit with fine steps while RF is
// on the air and coarse steps through silence, delivers comparator
// transitions to the MCU, answers the MCU's mid-bit sampling requests, and
// additionally probes the comparator at every ground-truth slot midpoint
// so experiments can measure raw slot BER (Fig 17) independently of frame
// sync (Fig 18 measures the sync path instead).
#pragma once

#include <cstdint>
#include <vector>

#include "phy/pathloss.h"
#include "reader/downlink_encoder.h"
#include "sim/rng.h"
#include "tag/energy_detector.h"
#include "tag/mcu.h"
#include "util/units.h"
#include "wifi/traffic.h"

namespace wb::core {

struct DownlinkSimConfig {
  /// Reader -> tag distance.
  Meters reader_tag_distance_m{1.0};

  /// Reader transmit power (also used for NAV-respecting ambient
  /// suppression).
  Dbm reader_tx_dbm{16.0};

  /// Distance of the ambient traffic source (AP) from the tag.
  Meters ambient_distance_m{5.0};
  Dbm ambient_tx_dbm{16.0};

  /// Whether ambient stations honour the reader's CTS_to_SELF NAV
  /// (802.11-compliant devices do; set false to stress-test).
  bool ambient_respects_nav = true;

  phy::PathLossModel pathloss{};
  tag::EnergyDetectorParams detector{};
  tag::McuParams mcu = tag::McuParams::defaults();

  /// Circuit integration step while RF is on the air, microseconds.
  double fine_step_us = 1.0;

  std::uint64_t seed = 1;
};

struct DownlinkSimReport {
  /// Comparator level probed at each transmitted slot's midpoint (same
  /// order as the transmission's slots). Raw detector performance.
  BitVec slot_levels;

  /// Frames the MCU fully decoded (payload bits, unvalidated).
  std::vector<tag::McuDecodeResult> decoded;

  /// Times the MCU entered packet-decoding mode.
  std::uint64_t decode_entries = 0;

  /// Energy accounting over the simulated interval.
  double detector_energy_uj = 0.0;
  double mcu_energy_uj = 0.0;
  TimeUs simulated_us{0};
};

class DownlinkSim {
 public:
  explicit DownlinkSim(const DownlinkSimConfig& cfg);

  /// Run the tag receiver over [0, until_us) with the reader transmitting
  /// `tx` (may be empty) and `ambient` traffic on the air.
  DownlinkSimReport run(const reader::DownlinkTransmission& tx,
                        const wifi::PacketTimeline& ambient, TimeUs until_us);

  /// Received mean power at the tag from the reader / ambient source.
  Milliwatts reader_power_mw() const;
  Milliwatts ambient_power_mw() const;

 private:
  DownlinkSimConfig cfg_;
};

}  // namespace wb::core
