#include "core/device.h"

#include "core/rate_control.h"

namespace wb::core {

void TagDevice::add_register(std::uint8_t reg_index, TagRegister reg) {
  registers_[reg_index] = std::move(reg);
}

std::optional<BitVec> TagDevice::handle(const Query& query) {
  if (query.tag_address != address_) return std::nullopt;  // stay silent
  if (query.command != kCmdReadSensor) return std::nullopt;
  const auto reg_index = static_cast<std::uint8_t>(query.argument & 0xFF);
  const auto it = registers_.find(reg_index);
  if (it == registers_.end()) return std::nullopt;
  ++queries_served_;

  BitVec out = unpack_uint(address_, 16);
  const auto reg_bits = unpack_uint(reg_index, 8);
  out.insert(out.end(), reg_bits.begin(), reg_bits.end());
  const auto value_bits = unpack_uint(it->second.read(), 16);
  out.insert(out.end(), value_bits.begin(), value_bits.end());
  return out;
}

DeviceQueryOutcome query_device(WiFiBackscatterSystem& system,
                                TagDevice& device, const Query& query) {
  DeviceQueryOutcome out;

  RateControl rc(
      RateControlParams{system.config().packets_per_bit, 0.8});
  const double rate = rc.choose_bit_rate(system.config().helper_pps);
  Query q = query;
  q.bitrate_code = rc.rate_code(rate);

  for (std::size_t attempt = 1;
       attempt <= system.config().max_query_attempts; ++attempt) {
    const auto dl = system.send_downlink(q.to_bits());
    out.transport.downlink.attempts = attempt;
    out.transport.downlink.delivered = dl.delivered;
    if (dl.decoded_query) {
      out.transport.downlink.decoded_query = dl.decoded_query;
    }
    out.transport.downlink.tag_energy_uj += dl.tag_energy_uj;
    if (!dl.delivered) continue;

    // The tag firmware sees exactly what it decoded, not what was sent.
    const auto response = device.handle(*dl.decoded_query);
    if (!response) {
      // Wrong address / unknown command: the tag stays silent and the
      // reader's response window times out. No uplink is attempted.
      return out;
    }
    out.addressed_tag_responded = true;
    const double tag_rate =
        RateControl::rate_from_code(dl.decoded_query->bitrate_code);
    out.transport.uplink = system.receive_uplink(*response, tag_rate);
    if (out.transport.uplink.delivered) {
      const auto& bits = out.transport.uplink.data;
      if (bits.size() == kDeviceResponseBits) {
        out.value = static_cast<std::uint16_t>(
            pack_uint({bits.data() + 24, 16}));
      }
      break;
    }
  }
  return out;
}

}  // namespace wb::core
