// WiFiBackscatterSystem — the public, end-to-end API of the library.
//
// Wires the whole paper together: a Wi-Fi reader (downlink encoder +
// uplink decoder + rate control), a Wi-Fi helper (traffic source), and an
// RF-powered tag (energy-detector receiver + MCU + backscatter modulator)
// placed in a simulated indoor channel. The interaction model is the
// paper's request-response protocol (§2, §5):
//
//   1. the reader measures the helper's packet rate and picks the uplink
//      bit rate N/M;
//   2. the reader transmits a query on the downlink (CTS_to_SELF +
//      packet-presence OOK), retrying until the tag decodes it;
//   3. the tag answers on the uplink by backscattering the helper's
//      packets at the commanded bit rate;
//   4. the reader decodes the response from its per-packet CSI (or RSSI).
//
// See examples/quickstart.cpp for the canonical usage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/downlink_sim.h"
#include "core/frame.h"
#include "core/rate_control.h"
#include "core/uplink_sim.h"
#include "reader/downlink_encoder.h"
#include "reader/uplink_decoder.h"

namespace wb::core {

struct SystemConfig {
  /// Tag-to-reader distance (the paper's main performance axis).
  Meters tag_reader_distance_m{0.15};

  /// Helper (AP) to tag distance.
  Meters helper_distance_m{3.0};

  /// Helper traffic rate, packets/s.
  double helper_pps = 1000.0;

  /// Decode uplink from CSI or RSSI.
  reader::MeasurementSource uplink_source = reader::MeasurementSource::kCsi;

  /// Measurements the reader wants per uplink bit (M in §5).
  double packets_per_bit = 10.0;

  /// Downlink slot length (50 us == 20 kbps).
  TimeUs downlink_slot_us{50};

  /// How many times the reader re-sends an unanswered query (§4.1).
  std::size_t max_query_attempts = 4;

  /// Use the §4.1 single-bit ACK: after each downlink attempt the reader
  /// checks for the tag's short acknowledgment pattern before waiting for
  /// the full (much slower) uplink response, so failed deliveries are
  /// detected at ACK speed instead of response-timeout speed.
  bool ack_enabled = false;

  /// Hardware models (defaults reproduce the prototype).
  wifi::NicModelParams nic{};
  tag::EnergyDetectorParams detector{};
  phy::MultipathProfile multipath{};
  phy::ChannelDrift::Params drift{};
  phy::TagReflection tag_reflection{};

  std::uint64_t seed = 1;
};

/// Result of one downlink delivery attempt(s).
struct DownlinkOutcome {
  bool delivered = false;
  std::size_t attempts = 0;
  std::optional<Query> decoded_query;  ///< what the tag decoded
  double tag_energy_uj = 0.0;          ///< detector + MCU energy spent
  std::optional<bool> ack_detected;    ///< §4.1 ACK result, if enabled
  TimeUs simulated_us{0};             ///< virtual time this leg simulated
};

/// Result of one uplink response.
struct UplinkOutcome {
  bool delivered = false;     ///< sync found and CRC valid
  bool sync_found = false;
  BitVec data;                ///< recovered data bits (CRC-checked)
  double bit_rate_bps = 0.0;  ///< rate the tag used
  std::size_t bit_errors = 0; ///< vs the tag's transmitted frame (oracle)
  std::size_t bits_total = 0;
  TimeUs simulated_us{0};    ///< virtual time this leg simulated
};

/// A full query-response round trip.
struct QueryOutcome {
  DownlinkOutcome downlink;
  UplinkOutcome uplink;
  bool success() const { return downlink.delivered && uplink.delivered; }
};

class WiFiBackscatterSystem {
 public:
  explicit WiFiBackscatterSystem(const SystemConfig& cfg);

  /// Ask the tag `query`; the tag, if it decodes the query, responds with
  /// `tag_data` (its sensor reading) at the commanded bit rate.
  QueryOutcome query(const Query& query, const BitVec& tag_data);

  /// The bit rate the reader's rate control would command right now.
  double commanded_bit_rate() const;

  /// Downlink only: deliver `data` (56 bits) to the tag once (no retry).
  DownlinkOutcome send_downlink(const BitVec& data);

  /// Uplink only: the tag transmits `data` at `bit_rate_bps`; the reader
  /// decodes it.
  UplinkOutcome receive_uplink(const BitVec& data, double bit_rate_bps);

  /// ACK exchange (§4.1): the tag backscatters its short fixed pattern if
  /// `tag_acks`; returns whether the reader detected it.
  bool exchange_ack(bool tag_acks);

  const SystemConfig& config() const { return cfg_; }

 private:
  SystemConfig cfg_;
  std::uint64_t round_ = 0;  ///< salts per-round RNG forks
};

}  // namespace wb::core
