#include "core/inventory.h"

#include <algorithm>

#include "core/frame.h"
#include "reader/uplink_decoder.h"
#include "tag/modulator.h"
#include "wifi/traffic.h"
#include "util/check.h"

namespace wb::core {
namespace {

constexpr TimeUs kLeadUs{600'000};  // fills the conditioning window

/// Bits in one inventory reply: 16-bit address through the uplink frame
/// layer (preamble + address + crc8 + postamble).
std::size_t reply_frame_bits() {
  return uplink_preamble().size() + uplink_payload_bits(16);
}

}  // namespace

InventoryResult run_inventory(std::span<const InventoryTag> tags,
                              const InventoryConfig& cfg) {
  InventoryResult result;
  WB_REQUIRE(!tags.empty(), "inventory needs at least one tag");

  sim::RngStream rng(cfg.seed);
  auto slot_rng = rng.fork("slot-choice");

  // Static placement: one channel realisation for the whole inventory.
  phy::UplinkChannelParams base;
  base.reader_pos = cfg.reader_pos;
  base.helper_pos = cfg.helper_pos;
  std::vector<phy::TagPlacement> placements;
  placements.reserve(tags.size());
  for (const auto& t : tags) placements.push_back(t.placement);
  phy::MultiTagUplinkChannel channel(base, placements,
                                     rng.fork("channel"));
  wifi::NicModel nic(cfg.nic, rng.fork("nic"));
  nic.calibrate(
      channel.response(std::vector<std::uint8_t>(tags.size(), 0), TimeUs{}));

  std::vector<bool> identified(tags.size(), false);
  std::size_t q = cfg.initial_q;
  const TimeUs bit_us = TimeUs::from_us(1e6 / cfg.bit_rate_bps);
  const TimeUs slot_us =
      bit_us * static_cast<std::int64_t>(reply_frame_bits());

  for (std::size_t round = 0; round < cfg.max_rounds; ++round) {
    const std::size_t remaining = static_cast<std::size_t>(
        std::count(identified.begin(), identified.end(), false));
    if (remaining == 0) break;

    const std::size_t slots = std::size_t{1} << q;
    InventoryRoundLog log;
    log.q = q;
    log.slots = slots;

    // Unidentified tags pick slots.
    std::vector<std::size_t> chosen(tags.size(), slots);  // slots == none
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (!identified[i]) chosen[i] = slot_rng.uniform_int(slots);
    }

    // Simulate the whole round as one continuous capture.
    const TimeUs round_dur = kLeadUs +
                             slot_us * static_cast<std::int64_t>(slots) +
                             TimeUs{100'000};
    auto traffic_rng = rng.fork("traffic", round);
    const auto timeline = wifi::make_cbr_timeline(
        cfg.helper_pps, round_dur, wifi::TrafficParams{}, traffic_rng);

    std::vector<tag::Modulator> mods;
    std::vector<std::size_t> mod_tag;
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (chosen[i] >= slots) continue;
      const BitVec frame =
          build_uplink_frame(unpack_uint(tags[i].address, 16));
      mods.emplace_back(
          frame, bit_us,
          kLeadUs + slot_us * static_cast<std::int64_t>(chosen[i]));
      mod_tag.push_back(i);
    }

    wifi::CaptureTrace trace;
    trace.reserve(timeline.size());
    std::vector<std::uint8_t> states(tags.size(), 0);
    for (const auto& pkt : timeline) {
      // CSI comes from the packet preamble: sample switch states at the
      // packet start, the same instant the decoder bins by.
      std::fill(states.begin(), states.end(), 0);
      for (std::size_t m = 0; m < mods.size(); ++m) {
        states[mod_tag[m]] = mods[m].state_at(pkt.start_us) ? 1 : 0;
      }
      trace.push_back(nic.measure(channel.response(states, pkt.start_us),
                                  pkt.start_us, pkt.source, pkt.kind));
    }
    const auto ct =
        reader::condition(trace, reader::MeasurementSource::kCsi);

    // Decode each slot.
    for (std::size_t slot = 0; slot < slots; ++slot) {
      std::vector<std::size_t> repliers;
      for (std::size_t i = 0; i < tags.size(); ++i) {
        if (chosen[i] == slot) repliers.push_back(i);
      }
      if (repliers.empty()) {
        ++log.empties;
        continue;
      }
      reader::UplinkDecoderConfig dec;
      dec.payload_bits = uplink_payload_bits(16);
      dec.bit_duration_us = bit_us;
      const TimeUs slot_start =
          kLeadUs + slot_us * static_cast<std::int64_t>(slot);
      dec.search_from = slot_start - bit_us;
      dec.search_to = slot_start + bit_us;
      reader::UplinkDecoder decoder(dec);
      const auto res = decoder.decode_conditioned(ct);

      bool decoded_someone = false;
      if (res.found) {
        if (const auto data = parse_uplink_payload(res.payload, 16)) {
          const auto addr = static_cast<std::uint16_t>(pack_uint(*data));
          for (std::size_t i : repliers) {
            if (!identified[i] && tags[i].address == addr) {
              identified[i] = true;
              result.identified.push_back(addr);
              ++log.identified;
              decoded_someone = true;
              break;
            }
          }
        }
      }
      if (!decoded_someone && repliers.size() > 1) ++log.collisions;
    }

    result.elapsed_us += slot_us * static_cast<std::int64_t>(slots);
    result.rounds.push_back(log);

    // Gen-2-style Q adjustment: grow on collisions, shrink on emptiness.
    if (log.collisions > 0 && log.collisions >= log.identified &&
        q < cfg.max_q) {
      ++q;
    } else if (log.collisions == 0 && log.empties > slots / 2 && q > 1) {
      --q;
    }
  }

  result.complete = std::all_of(identified.begin(), identified.end(),
                                [](bool b) { return b; });
  return result;
}

}  // namespace wb::core
