// Multi-tag inventory (paper §2): "In the presence of multiple Wi-Fi
// Backscatter tags in the vicinity, the interrogator can use protocols
// similar to EPC Gen-2 to identify these devices and then query each of
// them individually."
//
// This module implements that protocol over the simulated PHY: a
// slotted-ALOHA inventory with Gen-2-style Q adaptation. Each round the
// reader announces 2^Q response slots; every unidentified tag picks one
// uniformly and backscatters a short frame carrying its 16-bit address.
// Slots with one replier decode; slots where several tags answer see
// superposed backscatter (MultiTagUplinkChannel) and normally fail the
// CRC — a collision. Occasionally the stronger tag of a colliding pair
// decodes anyway (the capture effect), which Gen-2 also exploits. The
// reader then grows or shrinks Q to track the unidentified population.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/multi_tag_channel.h"
#include "wifi/nic.h"

namespace wb::core {

struct InventoryTag {
  std::uint16_t address = 0;
  phy::TagPlacement placement{};
};

struct InventoryConfig {
  phy::Vec2 reader_pos{0.0, 0.0};
  phy::Vec2 helper_pos{3.0, 0.0};
  double helper_pps = 3'000.0;
  double bit_rate_bps = 500.0;  ///< uplink rate during inventory
  std::size_t initial_q = 2;    ///< first round has 2^Q slots
  std::size_t max_q = 6;
  std::size_t max_rounds = 12;
  wifi::NicModelParams nic{};
  std::uint64_t seed = 1;
};

struct InventoryRoundLog {
  std::size_t q = 0;
  std::size_t slots = 0;
  std::size_t identified = 0;  ///< new addresses this round
  std::size_t collisions = 0;  ///< slots with >1 replier and no decode
  std::size_t empties = 0;
};

struct InventoryResult {
  std::vector<std::uint16_t> identified;  ///< in discovery order
  std::vector<InventoryRoundLog> rounds;
  bool complete = false;  ///< every tag identified
  TimeUs elapsed_us{0};  ///< total air time spent on inventory
};

/// Run the inventory until every tag is identified or max_rounds expire.
InventoryResult run_inventory(std::span<const InventoryTag> tags,
                              const InventoryConfig& cfg);

}  // namespace wb::core
