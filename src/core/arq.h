// Selective-repeat ARQ over the backscatter uplink (an extension the
// paper's §4.1 retransmission scheme naturally suggests): instead of
// re-sending the whole frame when the CRC fails, the reader uses the
// decoder's per-bit vote margins to identify the *suspect* bit range and
// asks the tag to retransmit only that range — a large win at the
// uplink's tens-of-bits-per-second rates, where every bit costs real
// time and tag energy.
//
// Protocol:
//   1. the tag sends the full frame; the reader decodes and checks CRC;
//   2. on failure, the reader takes the lowest-confidence payload bits,
//      widens them to a contiguous range, and queries the tag for it
//      (command kCmdRepeat, argument = offset:12 | length:12);
//   3. the tag answers with preamble + range bits + crc8 + postamble;
//   4. the reader patches validated ranges into its estimate and stops as
//      soon as the patched frame passes the original CRC.
#pragma once

#include <cstdint>
#include <vector>

#include "core/uplink_sim.h"
#include "util/bits.h"
#include "util/units.h"

namespace wb::core {

inline constexpr std::uint8_t kCmdRepeat = 0x03;

struct ArqConfig {
  /// Link geometry / models (same knobs as the experiments).
  Meters tag_reader_distance_m{0.5};
  Meters helper_tag_distance_m{3.0};
  double helper_pps = 3'000.0;
  double bit_rate_bps = 200.0;

  /// Repeat rounds after the initial transmission.
  std::size_t max_repeats = 3;

  /// Bits whose vote margin falls below this are suspect.
  double confidence_floor = 0.6;

  /// Minimum bits per repeat request (tiny requests waste framing).
  std::size_t min_request_bits = 8;

  std::uint64_t seed = 1;
};

struct ArqRound {
  std::size_t offset = 0;   ///< requested range (full frame: 0, n)
  std::size_t length = 0;
  bool decoded = false;     ///< the (sub-)frame's own CRC passed
};

struct ArqReport {
  bool delivered = false;   ///< final data passed the frame CRC
  BitVec data;              ///< recovered data bits when delivered
  std::vector<ArqRound> rounds;
  std::size_t bits_transmitted = 0;  ///< total payload bits sent by the tag
};

/// Run the protocol for `data` over a single placement (seeded); the
/// baseline alternative (full-frame retransmission) would transmit
/// `data.size() * rounds` bits — the report's counter shows the saving.
ArqReport run_selective_repeat(const BitVec& data, const ArqConfig& cfg);

}  // namespace wb::core
