// Uplink rate control (paper §5): the reader measures how fast the helper
// is transmitting (N packets/s), knows how many channel measurements it
// needs per bit (M), and commands the tag to transmit at N/M bits/s —
// conservatively, so bursty traffic rarely leaves a bit without
// measurements.
#pragma once

#include <array>
#include <cstdint>

#include "util/units.h"
#include "wifi/capture.h"

namespace wb::core {

/// The uplink bit rates the prototype supports (§7.2 tests exactly these).
inline constexpr std::array<double, 4> kSupportedBitRates = {100.0, 200.0,
                                                             500.0, 1000.0};

struct RateControlParams {
  /// Channel measurements the decoder wants per bit (M). 30 gives the
  /// paper's most reliable operating point; 3 its fastest.
  double packets_per_bit = 10.0;

  /// Safety factor < 1 applied to the measured packet rate ("the Wi-Fi
  /// reader provides conservative bit rate estimates", §5).
  double safety = 0.8;
};

class RateControl {
 public:
  explicit RateControl(RateControlParams p) : params_(p) {}

  /// Average helper packet rate (packets/s) observed over the most recent
  /// `window_us` of a capture trace. The averaging span is clamped to the
  /// trace's actual extent (a 0.5 s capture is not averaged over a 1 s
  /// window), and the window is half-open (end - span, end]: a packet
  /// exactly at the lower edge is excluded.
  static double measured_packet_rate(const wifi::CaptureTrace& trace,
                                     TimeUs window_us);

  /// Raw N/M rate in bits/s for a given helper packet rate.
  double raw_rate_bps(double helper_pps) const;

  /// Largest supported rate not exceeding the (safety-scaled) raw rate;
  /// returns the smallest supported rate if even that is too fast.
  double choose_bit_rate(double helper_pps) const;

  /// Code for the chosen rate, as carried in the query frame's
  /// bitrate_code field. The rate must be one of kSupportedBitRates
  /// (i.e. a choose_bit_rate result); anything else is a contract
  /// violation, not a silent fallback to the slowest code.
  std::uint8_t rate_code(double bit_rate_bps) const;

  /// Inverse of rate_code.
  static double rate_from_code(std::uint8_t code);

  const RateControlParams& params() const { return params_; }

 private:
  RateControlParams params_;
};

}  // namespace wb::core
