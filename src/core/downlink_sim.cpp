#include "core/downlink_sim.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "phy/ofdm_envelope.h"

namespace wb::core {
namespace {

/// Power-change event for the sweep over time: at `t_us` the mean on-air
/// power at the tag changes by `delta_mw`.
struct PowerEvent {
  double t_us;
  double delta_mw;
};

}  // namespace

DownlinkSim::DownlinkSim(const DownlinkSimConfig& cfg) : cfg_(cfg) {}

Milliwatts DownlinkSim::reader_power_mw() const {
  return (cfg_.reader_tx_dbm -
          cfg_.pathloss.loss_db(cfg_.reader_tag_distance_m))
      .to_mw();
}

Milliwatts DownlinkSim::ambient_power_mw() const {
  return (cfg_.ambient_tx_dbm -
          cfg_.pathloss.loss_db(cfg_.ambient_distance_m))
      .to_mw();
}

DownlinkSimReport DownlinkSim::run(const reader::DownlinkTransmission& tx,
                                   const wifi::PacketTimeline& ambient,
                                   TimeUs until_us) {
  sim::RngStream rng(cfg_.seed);
  auto rng_env = rng.fork("envelope");

  // --- Build the power-change event list ---
  std::vector<PowerEvent> events;
  events.reserve((tx.packets.size() + ambient.size()) * 2);
  const double p_reader = reader_power_mw().value();
  const double p_ambient = ambient_power_mw().value();

  std::vector<std::pair<TimeUs, TimeUs>> nav;
  for (const auto& pkt : tx.packets) {
    events.push_back(
        {static_cast<double>(pkt.start_us.ticks()), p_reader});
    events.push_back(
        {static_cast<double>(pkt.end_us().ticks()), -p_reader});
    if (pkt.kind == wifi::FrameKind::kCtsToSelf && pkt.nav_us > TimeUs{}) {
      nav.emplace_back(pkt.end_us(), pkt.end_us() + pkt.nav_us);
    }
  }
  for (const auto& pkt : ambient) {
    if (cfg_.ambient_respects_nav) {
      const bool blocked = std::any_of(
          nav.begin(), nav.end(), [&pkt](const auto& w) {
            return pkt.start_us >= w.first && pkt.start_us < w.second;
          });
      if (blocked) continue;  // compliant station defers out of the window
    }
    events.push_back(
        {static_cast<double>(pkt.start_us.ticks()), p_ambient});
    events.push_back(
        {static_cast<double>(pkt.end_us().ticks()), -p_ambient});
  }
  std::sort(events.begin(), events.end(),
            [](const PowerEvent& a, const PowerEvent& b) {
              return a.t_us < b.t_us;
            });

  // --- Probe schedule: slot midpoints of the reader's transmission ---
  std::vector<double> probes;
  probes.reserve(tx.slots.size());
  if (!tx.slots.empty()) {
    const double slot_us =
        tx.slots.size() >= 2
            ? static_cast<double>(
                  (tx.slots[1].start_us - tx.slots[0].start_us).ticks())
            : 50.0;
    for (const auto& s : tx.slots) {
      probes.push_back(static_cast<double>(s.start_us.ticks()) +
                       0.5 * slot_us);
    }
  }

  // --- Run the circuit + MCU, sweeping power events as we go ---
  tag::EnergyDetector det(cfg_.detector, rng.fork("detector"));
  tag::Mcu mcu(cfg_.mcu);

  DownlinkSimReport report;
  report.slot_levels.reserve(probes.size());

  constexpr double kCoarseStepUs = 20.0;
  const double end = static_cast<double>(until_us.ticks());
  double t = 0.0;
  double mean_p = 0.0;
  std::size_t event_i = 0;
  std::size_t probe_i = 0;
  bool level = det.comparator();

  // Apply events at t == 0.
  while (event_i < events.size() && events[event_i].t_us <= t) {
    mean_p += events[event_i].delta_mw;
    ++event_i;
  }

  while (t < end) {
    const double seg_end =
        event_i < events.size() ? std::min(events[event_i].t_us, end) : end;
    const double step = mean_p > 1e-12 ? cfg_.fine_step_us : kCoarseStepUs;
    double next_t = std::min(seg_end, t + step);
    // Hit MCU sample instants and probe instants exactly.
    if (const auto s = mcu.next_sample_time()) {
      const double st = static_cast<double>(s->ticks());
      if (st > t && st < next_t) next_t = st;
    }
    if (probe_i < probes.size() && probes[probe_i] > t &&
        probes[probe_i] < next_t) {
      next_t = probes[probe_i];
    }
    const double dt = next_t - t;
    const double inst_p =
        mean_p > 1e-12
            ? phy::draw_ofdm_power_sample(Milliwatts{mean_p}, rng_env)
            : 0.0;
    const bool new_level = det.step(dt, Milliwatts{inst_p});
    const auto now = TimeUs{std::llround(next_t)};
    if (new_level != level) {
      mcu.on_transition(now, new_level);
      level = new_level;
    }
    if (const auto s = mcu.next_sample_time()) {
      if (static_cast<double>(s->ticks()) <= next_t) {
        mcu.on_sample(now, new_level);
      }
    }
    if (probe_i < probes.size() && probes[probe_i] <= next_t) {
      report.slot_levels.push_back(new_level ? 1 : 0);
      ++probe_i;
    }
    t = next_t;
    while (event_i < events.size() && events[event_i].t_us <= t) {
      mean_p += events[event_i].delta_mw;
      ++event_i;
    }
    // Guard against accumulated floating-point residue in long runs.
    if (mean_p < 1e-15) mean_p = std::max(mean_p, 0.0);
  }

  report.decoded = std::move(mcu.decoded());
  report.decode_entries = mcu.decode_mode_entries();
  report.detector_energy_uj = det.energy_uj();
  report.mcu_energy_uj = mcu.energy_uj(until_us);
  report.simulated_us = until_us;
  if (auto* m = obs::metrics()) {
    m->counter("core.downlink.runs_total").add(1);
    m->counter("core.downlink.slots_probed_total")
        .add(report.slot_levels.size());
    m->counter("core.downlink.frames_decoded_total")
        .add(report.decoded.size());
    m->counter("core.downlink.decode_entries_total")
        .add(report.decode_entries);
    m->gauge("tag.detector.energy_uj").add(report.detector_energy_uj);
    m->gauge("tag.mcu.energy_uj").add(report.mcu_energy_uj);
  }
  if (auto* tr = obs::tracer()) {
    const int lane = tr->lane("tag");
    tr->complete(lane, "downlink_listen", "tag", TimeUs{}, until_us,
                 {{"slots", static_cast<double>(report.slot_levels.size())},
                  {"frames_decoded",
                   static_cast<double>(report.decoded.size())}});
    for (const auto& frame : report.decoded) {
      tr->instant(lane, "mcu_frame_decoded", "tag", frame.payload_start_us,
                  {{"bits", static_cast<double>(frame.payload.size())}});
    }
  }
  return report;
}

}  // namespace wb::core
