#include "tag/modulator.h"

#include "util/check.h"

namespace wb::tag {

Modulator::Modulator(BitVec frame, TimeUs bit_duration, TimeUs start_time)
    : frame_(std::move(frame)),
      chips_(frame_),
      chip_duration_(bit_duration),
      start_(start_time) {
  WB_REQUIRE(chip_duration_ > TimeUs{}, "bit duration must be positive");
  WB_REQUIRE(is_binary(frame_));
}

Modulator::Modulator(BitVec frame, const OrthogonalCodePair& codes,
                     TimeUs chip_duration, TimeUs start_time)
    : frame_(std::move(frame)),
      chip_duration_(chip_duration),
      start_(start_time) {
  WB_REQUIRE(chip_duration_ > TimeUs{}, "chip duration must be positive");
  WB_REQUIRE(is_binary(frame_));
  WB_REQUIRE(codes.length() >= 2,
             "orthogonal codes need at least two chips");
  chips_.reserve(frame_.size() * codes.length());
  for (std::uint8_t b : frame_) {
    const BitVec& code = b ? codes.one : codes.zero;
    chips_.insert(chips_.end(), code.begin(), code.end());
  }
}

bool Modulator::state_at(TimeUs t) const {
  if (t < start_) return false;
  const auto idx = static_cast<std::size_t>((t - start_) / chip_duration_);
  if (idx >= chips_.size()) return false;
  return chips_[idx] != 0;
}

bool Modulator::active_at(TimeUs t) const {
  return t >= start_ && t < end_time();
}

double Modulator::frame_energy_uj(const ModulatorPower& p) const {
  const double seconds =
      static_cast<double>(duration().ticks()) /
      static_cast<double>(kMicrosPerSec.ticks());
  return p.active_uw * seconds;  // uW * s == uJ
}

}  // namespace wb::tag
