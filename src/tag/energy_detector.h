// Sampled-time simulation of the tag's analog Wi-Fi energy detector
// (paper §4.2, Fig 8): envelope detector -> peak finder -> set-threshold
// circuit -> comparator.
//
// The circuit is fed instantaneous received-power samples (the OFDM
// envelope model in phy/ofdm_envelope.h) and emits the comparator's binary
// output. Each stage is modelled with the element that limits real
// performance:
//   * envelope detector: square-law Schottky diode (SMS7630-class) whose
//     output rides on input-referred noise — this sets the sensitivity
//     floor that limits downlink range; an RC low-pass smooths the high
//     peak-to-average OFDM envelope;
//   * peak finder: diode+op-amp+capacitor holds the peak, bleeding off
//     through the set-threshold resistor network so the circuit re-adapts
//     to channel changes over ~tens of ms;
//   * set-threshold: halves the held peak (capacitive divider);
//   * comparator: smoothed envelope vs threshold, with a little hysteresis
//     as real comparators have.
//
// Power draw of the whole chain is ~1 uW (it never turns off); that number
// is surfaced so system-level energy accounting can include it.
#pragma once

#include "sim/rng.h"
#include "util/units.h"

namespace wb::tag {

struct EnergyDetectorParams {
  /// Input-referred noise of the detector. This is the knob that sets
  /// the downlink range: packets whose received power is near or below it
  /// disappear into the diode noise.
  Dbm noise_floor_dbm{-37.5};

  /// RC time constant of the envelope smoother, microseconds. Larger =
  /// less OFDM flicker but slower edges — this is what makes 50 us packets
  /// (20 kbps) die at shorter range than 200 us packets (5 kbps).
  double smooth_tau_us = 18.0;

  /// Peak-hold decay time constant, microseconds ("relatively long time
  /// interval", §4.2).
  double peak_decay_tau_us = 8'000.0;

  /// Threshold as a fraction of the held peak (the set-threshold circuit
  /// halves it).
  double threshold_fraction = 0.5;

  /// Comparator hysteresis as a fraction of the threshold.
  double comparator_hysteresis = 0.08;

  /// Quiescent draw of the always-on analog chain, microwatts (§6 puts the
  /// full receive circuit at 9.0 uW).
  double quiescent_power_uw = 1.0;
};

/// Stateful circuit: call step() with the time delta since the previous
/// sample and the instantaneous received power; read back the comparator.
class EnergyDetector {
 public:
  EnergyDetector(const EnergyDetectorParams& params, sim::RngStream rng);

  /// Advance the circuit by dt_us with constant instantaneous input power
  /// `power_mw` over the step; returns the comparator output after the
  /// step. dt_us may vary call-to-call (the simulator samples finely
  /// around packets and coarsely in silence).
  bool step(double dt_us, Milliwatts power_mw);

  /// Idle the circuit for a long gap (no signal, only noise). Equivalent
  /// to many step() calls with noise-only input but O(gap/coarse_step).
  void idle(double gap_us);

  bool comparator() const { return comparator_; }
  double smoothed() const { return smooth_; }
  double peak() const { return peak_; }
  double threshold() const {
    return peak_ * params_.threshold_fraction;
  }

  /// Energy consumed so far by the analog chain, microjoules.
  double energy_uj() const { return energy_uj_; }

  const EnergyDetectorParams& params() const { return params_; }

  void reset();

 private:
  EnergyDetectorParams params_;
  sim::RngStream rng_;
  double noise_mw_;
  double smooth_ = 0.0;
  double peak_ = 0.0;
  bool comparator_ = false;
  double energy_uj_ = 0.0;
};

}  // namespace wb::tag
