#include "tag/mcu.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace wb::tag {
namespace {

/// Run-length encode a bit pattern: "1110100..." -> {3,1,1,2,...}.
std::vector<std::size_t> run_lengths(const BitVec& bits) {
  std::vector<std::size_t> runs;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i == 0 || bits[i] != bits[i - 1]) {
      runs.push_back(1);
    } else {
      ++runs.back();
    }
  }
  return runs;
}

}  // namespace

McuParams McuParams::defaults() {
  McuParams p;
  // Irregular run structure (runs 2,2,1,2,9); starts with '1'
  // (a rising edge out of silence) as Fig 7 requires.
  p.preamble = bits_from_string("1100100111111111");
  return p;
}

Mcu::Mcu(McuParams params) : params_(std::move(params)) {
  WB_REQUIRE(!params_.preamble.empty());
  WB_REQUIRE(params_.preamble.front() == 1,
             "preamble must start with a packet (rising edge)");
  WB_REQUIRE(params_.bit_duration_us > TimeUs{});
  WB_REQUIRE(params_.payload_bits > 0);
  WB_REQUIRE(params_.interval_tolerance >= 0.0 &&
             params_.interval_tolerance < 1.0);
  const auto runs = run_lengths(params_.preamble);
  // The matcher checks the intervals between transitions, i.e. all runs
  // except the last (whose terminating edge belongs to the payload and is
  // not guaranteed).
  run_template_.reserve(runs.size() - 1);
  for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
    run_template_.push_back(
        params_.bit_duration_us * static_cast<std::int64_t>(runs[i]));
  }
  last_run_us_ =
      params_.bit_duration_us * static_cast<std::int64_t>(runs.back());
  WB_ENSURE(!run_template_.empty(),
            "preamble needs at least two runs to be matchable");
}

void Mcu::spend_active(double us) {
  active_energy_uj_ += params_.power.active_uw * us * 1e-6;
}

void Mcu::on_transition(TimeUs t, bool level) {
  WB_REQUIRE(t >= last_transition_,
             "comparator transitions must arrive in time order");
  if (!genesis_set_) {
    genesis_ = t;
    genesis_set_ = true;
  }
  if (state_ == State::kDecoding) {
    // In decode mode transitions do not wake the MCU; it samples on its
    // own clock.
    return;
  }
  // Every transition wakes the MCU briefly (this is the power cost the
  // preamble-detection mode is designed around).
  spend_active(params_.power.wake_us);
  if (auto* m = obs::metrics()) {
    m->counter("tag.mcu.wakeups_total").add(1);
  }

  if (last_transition_ >= TimeUs{}) {
    recent_intervals_.push_back(t - last_transition_);
    if (recent_intervals_.size() > run_template_.size()) {
      recent_intervals_.erase(recent_intervals_.begin());
    }
    if (recent_intervals_.size() == run_template_.size()) {
      bool match = true;
      for (std::size_t i = 0; i < run_template_.size(); ++i) {
        const double expected =
            static_cast<double>(run_template_[i].ticks());
        const double got = static_cast<double>(recent_intervals_[i].ticks());
        if (std::abs(got - expected) >
            params_.interval_tolerance * expected) {
          match = false;
          break;
        }
      }
      // The interval sequence only lines up if the *current* edge ends the
      // second-to-last run; additionally the preamble's first edge is
      // rising, so the parity of `level` is fixed by the run count: after
      // an odd number of completed runs the level flips from '1'.
      if (match) {
        const bool expected_level =
            params_.preamble[params_.preamble.size() -
                             run_lengths(params_.preamble).back()] != 0;
        if (level == expected_level) {
          enter_decode_mode(t + last_run_us_);
        }
      }
    }
  }
  last_transition_ = t;
}

void Mcu::enter_decode_mode(TimeUs payload_start) {
  state_ = State::kDecoding;
  payload_start_ = payload_start;
  next_bit_ = 0;
  bits_.clear();
  bits_.reserve(params_.payload_bits);
  ++decode_entries_;
  recent_intervals_.clear();
  if (auto* m = obs::metrics()) {
    m->counter("tag.mcu.decode_entries_total").add(1);
  }
}

std::optional<TimeUs> Mcu::next_sample_time() const {
  if (state_ != State::kDecoding) return std::nullopt;
  return payload_start_ +
         params_.bit_duration_us * static_cast<std::int64_t>(next_bit_) +
         params_.bit_duration_us / 2;
}

void Mcu::on_sample(TimeUs t, bool level) {
  WB_REQUIRE(state_ == State::kDecoding,
             "on_sample is only valid in decode mode");
  (void)t;
  spend_active(params_.power.sample_us);
  bits_.push_back(level ? 1 : 0);
  ++next_bit_;
  if (next_bit_ >= params_.payload_bits) {
    // Full wake-up: framing and CRC checks.
    spend_active(params_.power.decode_us);
    decoded_.push_back(McuDecodeResult{payload_start_, bits_});
    state_ = State::kPreambleDetect;
    last_transition_ = TimeUs{-1};
    if (auto* m = obs::metrics()) {
      m->counter("tag.mcu.frames_decoded_total").add(1);
    }
  }
}

double Mcu::energy_uj(TimeUs now) const {
  const TimeUs since = genesis_set_ ? now - genesis_ : TimeUs{};
  const double sleep_uj =
      params_.power.sleep_uw * static_cast<double>(since.ticks()) * 1e-6;
  return active_energy_uj_ + sleep_uj;
}

}  // namespace wb::tag
