// Behavioural model of the tag's MSP430 firmware for the downlink receive
// path (paper §4.2), including its two power-saving modes:
//
//   * Preamble-detection mode: the MCU sleeps; each comparator output
//     transition wakes it just long enough to record the interval since
//     the previous transition and compare the recent interval sequence
//     against the preamble's run-length pattern.
//   * Packet-decoding mode: after a preamble match the MCU knows the bit
//     boundaries; it wakes once per bit to sample the comparator in the
//     middle of the bit, sleeps in between, and finally wakes fully to
//     run framing + CRC.
//
// The model is event-driven: the simulator feeds it comparator transitions
// and answers its mid-bit sampling requests. All activity debits an energy
// account so the paper's power claims are checkable outputs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bits.h"
#include "util/units.h"

namespace wb::tag {

/// MSP430-class power numbers (paper §4.2: the MCU "requires a relatively
/// large amount of power (several hundred uW) in its active mode").
struct McuPower {
  double sleep_uw = 0.5;        ///< LPM3-style sleep with timer running
  double active_uw = 600.0;     ///< CPU active
  double wake_us = 6.0;         ///< time spent active per wake-up event
  double sample_us = 10.0;      ///< active time to take one mid-bit sample
  double decode_us = 400.0;     ///< active time for framing + CRC at the end
};

struct McuParams {
  /// Downlink preamble bit pattern (Fig 7: the message starts with
  /// preamble bits). Chosen with an irregular run-length structure so
  /// ordinary Wi-Fi traffic rarely mimics its transition intervals.
  BitVec preamble;

  /// Downlink bit (slot) duration: one Wi-Fi packet or one equal silence.
  TimeUs bit_duration_us{50};

  /// Payload length in bits that follows the preamble (Fig 7: 64-bit
  /// payload including CRC).
  std::size_t payload_bits = 64;

  /// Relative tolerance when matching a transition interval against a
  /// preamble run (|observed - expected| <= tolerance * expected).
  double interval_tolerance = 0.3;

  McuPower power{};

  /// A reasonable default preamble (16 bits, irregular runs).
  static McuParams defaults();
};

/// One decoded downlink packet (bits as sampled; CRC checking is the
/// caller's framing concern).
struct McuDecodeResult {
  TimeUs payload_start_us{0};
  BitVec payload;
};

class Mcu {
 public:
  explicit Mcu(McuParams params);

  /// Feed a comparator transition (level after the edge) at time t.
  /// Times must be non-decreasing.
  void on_transition(TimeUs t, bool level);

  /// While decoding, the MCU wants to sample the comparator at specific
  /// instants; returns the next sampling time, if any.
  std::optional<TimeUs> next_sample_time() const;

  /// Deliver the comparator level at the time previously returned by
  /// next_sample_time().
  void on_sample(TimeUs t, bool level);

  /// Packets fully decoded so far (drained by the caller).
  std::vector<McuDecodeResult>& decoded() { return decoded_; }

  /// Number of times the MCU entered packet-decoding mode. Entries that
  /// do not end in a CRC-valid frame are the paper's Fig-18 false
  /// positives (accounting is done by the caller, who owns framing).
  std::uint64_t decode_mode_entries() const { return decode_entries_; }

  /// Total energy consumed, microjoules, including sleep, given the
  /// current time (sleep is accrued lazily).
  double energy_uj(TimeUs now) const;

  bool decoding() const { return state_ == State::kDecoding; }

  const McuParams& params() const { return params_; }

 private:
  enum class State { kPreambleDetect, kDecoding };

  void enter_decode_mode(TimeUs payload_start);
  void spend_active(double us);

  McuParams params_;
  std::vector<TimeUs> run_template_;  ///< expected preamble run intervals
  TimeUs last_run_us_{0};            ///< duration of the final preamble run

  State state_ = State::kPreambleDetect;
  std::vector<TimeUs> recent_intervals_;
  TimeUs last_transition_{-1};

  TimeUs payload_start_{0};
  std::size_t next_bit_ = 0;
  BitVec bits_;

  std::vector<McuDecodeResult> decoded_;
  std::uint64_t decode_entries_ = 0;

  double active_energy_uj_ = 0.0;
  TimeUs genesis_{0};
  bool genesis_set_ = false;
};

}  // namespace wb::tag
