#include "tag/power_manager.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace wb::tag {

PowerManager::PowerManager(const PowerManagerParams& p) : params_(p) {
  WB_REQUIRE(p.idle_load_uw >= 0.0 && p.decode_load_uw >= 0.0 &&
                 p.respond_load_uw >= 0.0,
             "energy budgets must be non-negative");
  WB_REQUIRE(p.brownout_fraction >= 0.0 &&
                 p.brownout_fraction <= p.resume_fraction &&
                 p.resume_fraction <= 1.0,
             "brown-out hysteresis must satisfy 0 <= brownout <= resume <= 1");
  const Harvester h(p.harvester);
  harvest_uw_ = h.harvested_uw(p.incident_dbm);
  const double cap_j = 0.5 * p.harvester.storage_cap_f *
                       (p.harvester.v_high * p.harvester.v_high -
                        p.harvester.v_low * p.harvester.v_low);
  capacity_uj_ = cap_j * 1e6;
  stored_uj_ = capacity_uj_ * std::clamp(p.initial_fraction, 0.0, 1.0);
  update_brownout();
}

void PowerManager::account(TimeUs dt, double load_uw) {
  WB_REQUIRE(dt >= TimeUs{}, "time cannot run backwards");
  const double seconds = static_cast<double>(dt.ticks()) * 1e-6;
  const double in = harvest_uw_ * seconds;
  const double out = load_uw * seconds;
  harvested_uj_ += in;
  spent_uj_ += out;
  stored_uj_ = std::clamp(stored_uj_ + in - out, 0.0, capacity_uj_);
  update_brownout();
  WB_ENSURE(stored_uj_ >= 0.0 && stored_uj_ <= capacity_uj_);
  if (auto* m = obs::metrics()) {
    m->counter("tag.power.accounted_us")
        .add(static_cast<std::uint64_t>(dt.ticks()));
    m->gauge("tag.power.harvested_uj").set(harvested_uj_);
    m->gauge("tag.power.spent_uj").set(spent_uj_);
    m->gauge("tag.power.stored_uj").set(stored_uj_);
  }
}

void PowerManager::update_brownout() {
  const bool was = browned_out_;
  if (browned_out_) {
    if (stored_fraction() >= params_.resume_fraction) browned_out_ = false;
  } else {
    if (stored_fraction() <= params_.brownout_fraction) browned_out_ = true;
  }
  if (browned_out_ != was) {
    if (auto* m = obs::metrics()) {
      m->counter(browned_out_ ? "tag.power.brownouts_total"
                              : "tag.power.resumes_total")
          .add(1);
    }
  }
}

void PowerManager::idle(TimeUs dt) { account(dt, params_.idle_load_uw); }

bool PowerManager::try_decode(TimeUs dt) {
  if (browned_out_) {
    idle(dt);
    return false;
  }
  account(dt, params_.idle_load_uw + params_.decode_load_uw);
  return true;
}

bool PowerManager::try_respond(TimeUs dt) {
  if (browned_out_) {
    idle(dt);
    return false;
  }
  account(dt, params_.idle_load_uw + params_.respond_load_uw);
  return true;
}

double PowerManager::idle_margin_uw() const {
  return harvest_uw_ - params_.idle_load_uw;
}

}  // namespace wb::tag
