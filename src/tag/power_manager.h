// Tag power management: the storage capacitor's charge ledger that decides
// when the battery-free tag can afford to listen, decode, and respond.
//
// §6 of the paper states the static budget (0.65 uW transmit, 9.0 uW
// receive, harvested power vs distance, ~50% duty cycle far from a TV
// tower). This module makes that budget *dynamic*: harvested energy flows
// into the capacitor continuously; the always-on detector and MCU sleep
// drain it; decoding a query and backscattering a response are discrete
// withdrawals. When the capacitor dips to its brown-out voltage the tag
// goes dark until recharged — the behaviour a deployed tag actually
// exhibits when queried faster than its harvest rate sustains.
#pragma once

#include "tag/harvester.h"
#include "util/units.h"

namespace wb::tag {

struct PowerManagerParams {
  HarvesterParams harvester{};

  /// Incident RF power at the tag (from the ambient source mix).
  Dbm incident_dbm{-14.0};  // ~30 cm from a +16 dBm transmitter

  /// Continuous draw while "listening": energy detector + MCU sleep, uW.
  double idle_load_uw = 1.5;

  /// Extra average draw while the MCU decodes one downlink frame, uW over
  /// the frame duration (transition wakes + per-bit samples + CRC).
  double decode_load_uw = 120.0;

  /// Extra average draw while backscattering a response, uW (the switch
  /// and timer; §6's 0.65 uW).
  double respond_load_uw = 0.65;

  /// Fraction of capacitor swing at which the tag browns out (cannot
  /// start new work below this; resumes above resume_fraction).
  double brownout_fraction = 0.1;
  double resume_fraction = 0.3;

  /// Initial stored energy as a fraction of the full swing.
  double initial_fraction = 1.0;
};

/// Charge ledger over the capacitor's usable energy swing.
class PowerManager {
 public:
  explicit PowerManager(const PowerManagerParams& p);

  /// Advance time by `dt` with only the idle load. Returns energy state.
  void idle(TimeUs dt);

  /// Attempt to run a decode of duration `dt`; returns false (and only
  /// idles) if the tag is browned out.
  bool try_decode(TimeUs dt);

  /// Attempt to backscatter for `dt`; returns false if browned out.
  bool try_respond(TimeUs dt);

  /// Stored energy, microjoules, and as a fraction of the usable swing.
  double stored_uj() const { return stored_uj_; }
  double stored_fraction() const { return stored_uj_ / capacity_uj_; }
  double capacity_uj() const { return capacity_uj_; }

  bool browned_out() const { return browned_out_; }

  /// Net idle power balance, uW (positive = charging while idle).
  double idle_margin_uw() const;

  /// Total energy harvested / spent so far, microjoules.
  double harvested_uj() const { return harvested_uj_; }
  double spent_uj() const { return spent_uj_; }

  const PowerManagerParams& params() const { return params_; }

 private:
  /// Apply `load_uw` for dt and harvest in parallel; clamps to [0, cap].
  void account(TimeUs dt, double load_uw);
  void update_brownout();

  PowerManagerParams params_;
  double harvest_uw_;
  double capacity_uj_;
  double stored_uj_;
  double harvested_uj_ = 0.0;
  double spent_uj_ = 0.0;
  bool browned_out_ = false;
};

}  // namespace wb::tag
