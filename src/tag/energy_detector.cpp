#include "tag/energy_detector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wb::tag {

EnergyDetector::EnergyDetector(const EnergyDetectorParams& params,
                               sim::RngStream rng)
    : params_(params), rng_(rng),
      noise_mw_(params.noise_floor_dbm.to_mw().value()) {
  WB_REQUIRE(params.smooth_tau_us > 0.0,
             "RC smoothing time constant must be positive");
  WB_REQUIRE(params.peak_decay_tau_us > 0.0,
             "peak-hold decay time constant must be positive");
  WB_REQUIRE(params.threshold_fraction > 0.0 &&
             params.threshold_fraction <= 1.0);
  WB_REQUIRE(params.comparator_hysteresis >= 0.0);
  WB_REQUIRE(params.quiescent_power_uw >= 0.0,
             "energy budgets must be non-negative");
}

bool EnergyDetector::step(double dt_us, Milliwatts power_mw) {
  WB_REQUIRE(dt_us > 0.0, "time step must be positive");
  WB_REQUIRE(power_mw >= Milliwatts{},
             "instantaneous power cannot be negative");
  // Square-law diode: output voltage proportional to input power, riding
  // on the detector's input-referred noise. Noise is one-sided-ish in a
  // real diode; we use |power + n| with Gaussian n of sigma = noise floor.
  const double noisy =
      std::abs(power_mw.value() + rng_.normal(0.0, noise_mw_));

  // RC low-pass smoothing of the detected envelope.
  const double a = 1.0 - std::exp(-dt_us / params_.smooth_tau_us);
  smooth_ += a * (noisy - smooth_);

  // Peak hold with slow bleed through the set-threshold resistor network.
  peak_ *= std::exp(-dt_us / params_.peak_decay_tau_us);
  peak_ = std::max(peak_, smooth_);

  // Comparator with hysteresis around threshold = fraction * peak.
  const double th = peak_ * params_.threshold_fraction;
  const double hyst = th * params_.comparator_hysteresis;
  if (comparator_) {
    if (smooth_ < th - hyst) comparator_ = false;
  } else {
    if (smooth_ > th + hyst) comparator_ = true;
  }

  energy_uj_ += params_.quiescent_power_uw * dt_us * 1e-6;
  return comparator_;
}

void EnergyDetector::idle(double gap_us) {
  WB_REQUIRE(gap_us >= 0.0, "idle gap must be non-negative");
  // During a long silence nothing interesting happens except the peak
  // bleeding down and the smoother settling onto the noise level; model it
  // with coarse steps (20 us) which keeps the noise statistics of the
  // comparator input approximately right while staying cheap.
  constexpr double kCoarseStepUs = 20.0;
  double remaining = gap_us;
  while (remaining > 0.0) {
    const double dt = std::min(kCoarseStepUs, remaining);
    step(dt, Milliwatts{});
    remaining -= dt;
  }
}

void EnergyDetector::reset() {
  smooth_ = 0.0;
  peak_ = 0.0;
  comparator_ = false;
}

}  // namespace wb::tag
