// Tag-side uplink transmitter: the firmware bit clock that drives the RF
// switch (paper §3.1, §6).
//
// The modulator holds a frame (bits) and a bit duration; the simulator asks
// it for the switch state at each helper-packet arrival instant. It knows
// nothing about Wi-Fi — exactly like the real tag, which just toggles its
// switch on a hardware-timer clock.
//
// Two modes:
//   * plain: each frame bit maps to one switch interval of `bit_duration`;
//   * coded (paper §3.4): each *data* bit expands to an L-chip orthogonal
//     code, chips at `bit_duration` each (the tag still only toggles a
//     switch; only the reader pays the decoding cost).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bits.h"
#include "util/codes.h"
#include "util/units.h"

namespace wb::tag {

/// Energy cost accounting for the transmit path (paper §6: the transmit
/// circuit draws 0.65 uW while modulating).
struct ModulatorPower {
  double active_uw = 0.65;
  double idle_uw = 0.0;
};

class Modulator {
 public:
  /// Plain mode: transmit `frame` MSB-first, one bit per `bit_duration`.
  Modulator(BitVec frame, TimeUs bit_duration, TimeUs start_time);

  /// Coded mode: transmit `frame` where every bit is expanded to the L-chip
  /// code (`codes.one` / `codes.zero`), chips of `chip_duration` each.
  Modulator(BitVec frame, const OrthogonalCodePair& codes,
            TimeUs chip_duration, TimeUs start_time);

  /// Switch state (true = reflecting) at absolute time t. Outside the
  /// frame the switch rests in the absorbing state (the tag modulates only
  /// when queried, §3.1).
  bool state_at(TimeUs t) const;

  /// True while the frame is on air at time t.
  bool active_at(TimeUs t) const;

  TimeUs start_time() const { return start_; }
  TimeUs end_time() const { return start_ + duration(); }
  TimeUs duration() const {
    return chip_duration_ * static_cast<std::int64_t>(chips_.size());
  }
  TimeUs chip_duration() const { return chip_duration_; }
  const BitVec& chip_sequence() const { return chips_; }
  const BitVec& frame() const { return frame_; }

  /// Energy consumed by the switch/timer over the frame, microjoules.
  double frame_energy_uj(const ModulatorPower& p = {}) const;

 private:
  BitVec frame_;
  BitVec chips_;  ///< per-chip switch states (equals frame_ in plain mode)
  TimeUs chip_duration_;
  TimeUs start_;
};

}  // namespace wb::tag
