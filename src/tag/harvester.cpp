#include "tag/harvester.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace wb::tag {

Dbm incident_power_dbm(Dbm tx_dbm, Meters d_m, Db ref_loss_db) {
  WB_REQUIRE(d_m > Meters{}, "distance must be positive");
  const double d = std::max(d_m.value(), 0.05);
  return tx_dbm - (ref_loss_db + Db{amplitude_ratio_to_db(d)});
}

Dbm tv_incident_power_dbm(Dbm tower_erp_dbm, double d_km) {
  WB_REQUIRE(d_km > 0.0, "distance must be positive");
  // ~600 MHz free-space reference loss at 1 m is ~28 dB; TV propagation
  // over km adds terrain/clutter, folded into an exponent of 2.4.
  const double d_m = std::max(d_km * 1000.0, 1.0);
  return tower_erp_dbm - Db{28.0 + 24.0 * std::log10(d_m)};
}

double Harvester::harvested_uw(Dbm incident_dbm) const {
  WB_REQUIRE(params_.efficiency > 0.0 && params_.efficiency <= 1.0);
  WB_REQUIRE(params_.source_duty >= 0.0 && params_.source_duty <= 1.0);
  const double in_mw =
      (incident_dbm + params_.antenna_gain_db).to_mw().value() *
      params_.source_duty;
  return in_mw * params_.efficiency * 1e3;  // mW -> uW
}

double Harvester::sustainable_duty_cycle(double harvested_uw,
                                         double load_uw) const {
  WB_REQUIRE(harvested_uw >= 0.0, "energy budgets must be non-negative");
  if (load_uw <= 0.0) return 1.0;
  return std::clamp(harvested_uw / load_uw, 0.0, 1.0);
}

double Harvester::cap_energy_uj() const {
  WB_REQUIRE(params_.storage_cap_f > 0.0, "storage capacitance must be positive");
  WB_REQUIRE(params_.v_high > params_.v_low && params_.v_low >= 0.0,
             "capacitor swing must satisfy v_high > v_low >= 0");
  const double e_j = 0.5 * params_.storage_cap_f *
                     (params_.v_high * params_.v_high -
                      params_.v_low * params_.v_low);
  return e_j * 1e6;
}

double Harvester::burst_seconds(double load_uw, double harvested_uw) const {
  WB_REQUIRE(load_uw >= 0.0 && harvested_uw >= 0.0,
             "energy budgets must be non-negative");
  const double net = load_uw - harvested_uw;
  if (net <= 0.0) return std::numeric_limits<double>::infinity();
  return cap_energy_uj() / net;
}

double Harvester::recharge_seconds(double harvested_uw,
                                   double idle_load_uw) const {
  const double net = harvested_uw - idle_load_uw;
  if (net <= 0.0) return std::numeric_limits<double>::infinity();
  return cap_energy_uj() / net;
}

}  // namespace wb::tag
