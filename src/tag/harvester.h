// RF energy-harvesting model (paper §6): the six-patch antenna feeds a
// full-wave rectifier; harvested DC powers the tag's transmit (0.65 uW)
// and receive (9.0 uW) circuits, plus the duty-cycled MCU.
//
// The paper's two headline power results are reproduced as model outputs:
//   * the Wi-Fi harvester runs both circuits continuously at ~1 foot from
//     the reader;
//   * with dual-antenna Wi-Fi + TV harvesting, the full system runs at
//     ~50% duty cycle 10 km from a TV broadcast tower.
#pragma once

#include "util/units.h"

namespace wb::tag {

struct HarvesterParams {
  /// Rectifier RF->DC conversion efficiency at the low input powers the
  /// tag sees (SMS7630-class diodes reach 10-20% there).
  double efficiency = 0.15;

  /// Effective antenna aperture gain for harvesting (the patch array
  /// was designed for the 2.4 GHz band).
  Db antenna_gain_db{6.0};

  /// Storage capacitor, farads; sets how long bursts can be sustained.
  double storage_cap_f = 100e-6;

  /// Capacitor operating voltage swing, volts (energy = 1/2 C (V1^2-V0^2)).
  double v_high = 2.4;
  double v_low = 1.8;

  /// Fraction of time the ambient source is actually radiating (Wi-Fi is
  /// bursty; TV is continuous).
  double source_duty = 1.0;
};

/// Power delivered to the incident wavefront at the tag, for a
/// transmitter EIRP `tx_dbm` at distance `d_m` with path-loss exponent 2
/// (free space, 40 dB at 1 m reference for 2.4 GHz).
Dbm incident_power_dbm(Dbm tx_dbm, Meters d_m, Db ref_loss_db = Db{40.0});

/// TV-band incident power at a given distance from a broadcast tower.
/// TV towers radiate ~1 MW EIRP around 600 MHz (ref loss ~28 dB at 1 m).
Dbm tv_incident_power_dbm(Dbm tower_erp_dbm, double d_km);

class Harvester {
 public:
  explicit Harvester(const HarvesterParams& params) : params_(params) {}

  /// DC power harvested (microwatts) from an incident RF power.
  double harvested_uw(Dbm incident_dbm) const;

  /// Largest duty cycle (0..1) at which a load of `load_uw` can run
  /// sustainably from the given harvested power (clipped to 1).
  double sustainable_duty_cycle(double harvested_uw, double load_uw) const;

  /// Seconds of continuous operation a full capacitor sustains for a load
  /// exceeding the harvest rate ("burst mode").
  double burst_seconds(double load_uw, double harvested_uw) const;

  /// Seconds to recharge the capacitor swing at a given surplus harvest.
  double recharge_seconds(double harvested_uw, double idle_load_uw) const;

  const HarvesterParams& params() const { return params_; }

 private:
  double cap_energy_uj() const;

  HarvesterParams params_;
};

}  // namespace wb::tag
