// What a monitor-mode Wi-Fi NIC hands to the Wi-Fi Backscatter decoder:
// one record per received packet, carrying the header timestamp plus the
// channel measurements (CSI amplitudes and per-antenna RSSI) the decoder
// operates on. The decoder never sees ground truth — only these records.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "phy/constants.h"
#include "util/units.h"

namespace wb::wifi {

/// Per-packet measurement record, modelled on the output of the Intel 5300
/// CSI tool (timestamp, 30 sub-channel amplitudes x 3 antennas, RSSI).
struct CaptureRecord {
  TimeUs timestamp_us{0};     ///< MAC timestamp from the packet header
  std::uint32_t source = 0;    ///< transmitter station id (from the header)
  bool has_csi = true;         ///< beacons lack CSI on the paper's NIC

  /// CSI amplitude per [antenna][sub-channel], NIC units.
  std::array<std::array<double, phy::kNumSubchannels>, phy::kNumAntennas>
      csi{};

  /// Per-antenna RSSI in dBm, quantised to the NIC's 1 dB resolution.
  std::array<double, phy::kNumAntennas> rssi_dbm{};
};

using CaptureTrace = std::vector<CaptureRecord>;

/// Total number of scalar CSI streams in a record (antennas x
/// sub-channels) — the decoder treats each as an independent channel
/// (paper §3.2: "treating multiple antennas as additional sub-channels").
inline constexpr std::size_t kNumCsiStreams =
    phy::kNumAntennas * phy::kNumSubchannels;

/// Flatten (antenna, sub-channel) to a stream index.
inline std::size_t stream_index(std::size_t antenna, std::size_t subchannel) {
  return antenna * phy::kNumSubchannels + subchannel;
}

/// Inverse of stream_index.
inline std::size_t stream_antenna(std::size_t stream) {
  return stream / phy::kNumSubchannels;
}
inline std::size_t stream_subchannel(std::size_t stream) {
  return stream % phy::kNumSubchannels;
}

/// CSI amplitude of a flattened stream.
inline double stream_csi(const CaptureRecord& r, std::size_t stream) {
  return r.csi[stream_antenna(stream)][stream_subchannel(stream)];
}

}  // namespace wb::wifi
