// Capture-trace serialisation: a simple CSV interchange format so
// simulated traces can be inspected with standard tooling and traces
// collected from real hardware (e.g. the Intel CSI tool, converted) can
// be fed to the decoder.
//
// Format: one header line, then one row per packet:
//   timestamp_us,source,has_csi,rssi_a0,rssi_a1,rssi_a2,csi_0_0,...,csi_2_29
// CSI cells are left empty for records with has_csi == 0.
#pragma once

#include <iosfwd>
#include <string>

#include "wifi/capture.h"

namespace wb::wifi {

/// Write a trace as CSV. Returns the number of records written.
std::size_t write_capture_csv(std::ostream& os, const CaptureTrace& trace);

/// Parse a CSV trace written by write_capture_csv (or hand-converted from
/// hardware dumps). Throws std::runtime_error on malformed input.
CaptureTrace read_capture_csv(std::istream& is);

/// Convenience file wrappers.
std::size_t save_capture_csv(const std::string& path,
                             const CaptureTrace& trace);
CaptureTrace load_capture_csv(const std::string& path);

/// The CSV as one string — what drop sites hand to the obs forensics
/// exemplar store (obs cannot name wifi types, so exemplars travel
/// pre-serialized and stay replayable via `trace_io --in`).
std::string capture_csv_string(const CaptureTrace& trace);

}  // namespace wb::wifi
