#include "wifi/mac.h"

#include <algorithm>
#include <limits>

#include "obs/forensics.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace wb::wifi {

DcfMac::DcfMac(sim::RngStream rng) : rng_(rng) {}

std::uint32_t DcfMac::add_station() {
  stations_.emplace_back();
  return static_cast<std::uint32_t>(stations_.size() - 1);
}

void DcfMac::make_saturated(std::uint32_t station, std::uint32_t size_bytes,
                            double rate_mbps) {
  auto& s = stations_.at(station);
  s.saturated = true;
  s.sat_size = size_bytes;
  s.sat_rate = rate_mbps;
}

void DcfMac::enqueue(std::uint32_t station, TimeUs arrival,
                     std::uint32_t size, double rate_mbps) {
  auto& s = stations_.at(station);
  WB_REQUIRE(s.queue.empty() || s.queue.back().arrival <= arrival,
             "packet arrivals must be in time order");
  s.queue.push_back(Pending{arrival, size, rate_mbps, false, TimeUs{}});
  ++s.stats.enqueued;
}

void DcfMac::enqueue_poisson(std::uint32_t station, double pps,
                             TimeUs duration, std::uint32_t size,
                             double rate_mbps, sim::RngStream& rng) {
  WB_REQUIRE(pps > 0.0, "packet rate must be positive");
  double t = rng.exponential(1e6 / pps);
  while (t < static_cast<double>(duration.ticks())) {
    enqueue(station, TimeUs{static_cast<std::int64_t>(t)}, size, rate_mbps);
    t += rng.exponential(1e6 / pps);
  }
}

void DcfMac::reserve(std::uint32_t station, TimeUs at, TimeUs nav_us) {
  auto& s = stations_.at(station);
  WB_REQUIRE(s.queue.empty() || s.queue.back().arrival <= at,
             "packet arrivals must be in time order");
  Pending p;
  p.arrival = at;
  p.size = 14;
  p.rate = 24.0;
  p.is_cts = true;
  p.nav_us = nav_us;
  s.queue.push_back(p);
  ++s.stats.enqueued;
}

bool DcfMac::has_frame(const Station& s, TimeUs at) const {
  if (s.head < s.queue.size() && s.queue[s.head].arrival <= at) return true;
  return s.saturated;
}

const DcfMac::Pending DcfMac::frame_of(Station& s, TimeUs at) {
  if (s.head < s.queue.size() && s.queue[s.head].arrival <= at) {
    return s.queue[s.head];
  }
  WB_INVARIANT(s.saturated);
  Pending p;
  p.arrival = at;
  p.size = s.sat_size;
  p.rate = s.sat_rate;
  return p;
}

void DcfMac::pop_frame(Station& s) {
  if (s.head < s.queue.size()) {
    ++s.head;
  }
  // Saturated synthesis needs no pop.
}

TimeUs DcfMac::next_arrival_after(TimeUs t) const {
  TimeUs best = TimeUs::max();
  for (const auto& s : stations_) {
    if (s.saturated) return t;  // always ready
    if (s.head < s.queue.size()) {
      best = std::min(best, std::max(s.queue[s.head].arrival, t));
    }
  }
  return best;
}

void DcfMac::run_until(TimeUs until) {
  while (now_ < until) {
    const TimeUs idle_start = std::max({now_, busy_until_, nav_until_});
    const TimeUs contention_start = idle_start + kDifsUs;

    // Who has something to send once the medium has been idle for DIFS?
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      if (has_frame(stations_[i], contention_start)) eligible.push_back(i);
    }
    if (eligible.empty()) {
      const TimeUs next = next_arrival_after(contention_start);
      if (next >= until || next == TimeUs::max()) {
        now_ = until;
        return;
      }
      now_ = next;
      continue;
    }

    // Draw backoffs for stations entering contention; keep frozen
    // counters for the rest (they resumed after the busy period).
    for (std::size_t i : eligible) {
      auto& s = stations_[i];
      if (!s.backoff) {
        s.backoff = rng_.uniform_int(s.cw + 1);
      }
    }
    std::size_t min_backoff = std::numeric_limits<std::size_t>::max();
    for (std::size_t i : eligible) {
      min_backoff = std::min(min_backoff, *stations_[i].backoff);
    }
    const TimeUs tx_time =
        contention_start + kSlotUs * static_cast<std::int64_t>(min_backoff);
    if (tx_time >= until) {
      now_ = until;
      return;
    }

    std::vector<std::size_t> winners;
    for (std::size_t i : eligible) {
      auto& s = stations_[i];
      if (*s.backoff == min_backoff) {
        winners.push_back(i);
      } else {
        *s.backoff -= min_backoff;  // freeze the remainder
      }
    }

    // Transmit: single winner succeeds, several collide.
    const bool collision = winners.size() > 1;
    TimeUs longest_air{0};
    for (std::size_t i : winners) {
      auto& s = stations_[i];
      const Pending frame = frame_of(s, tx_time);
      WifiPacket pkt;
      pkt.id = next_packet_id_++;
      pkt.source = static_cast<std::uint32_t>(i);
      pkt.kind = frame.is_cts ? FrameKind::kCtsToSelf : FrameKind::kData;
      pkt.start_us = tx_time;
      pkt.size_bytes = frame.size;
      pkt.rate_mbps = frame.rate;
      pkt.duration_us = airtime_us(frame.size, frame.rate);
      pkt.nav_us = frame.nav_us;
      longest_air = std::max(longest_air, pkt.duration_us);
      log_.push_back(AirFrame{pkt, collision});
      if (auto* m = obs::metrics()) {
        m->counter("wifi.mac.tx_frames_total").add(1);
        if (collision) m->counter("wifi.mac.collisions_total").add(1);
        if (!collision && frame.is_cts) {
          m->counter("wifi.mac.nav_reservations_total").add(1);
        }
      }
      // Forensics: each air transmission is one attempt; a collided tx is
      // the drop (the retry-limit branch below re-submits the same frame,
      // so it is not a second drop — this keeps attempts == decodes +
      // drops at this stage).
      if (auto* fx = obs::forensics()) {
        fx->record_attempt(obs::DropStage::kWifiMac);
        if (collision) {
          fx->record_drop(obs::DropStage::kWifiMac,
                          obs::DropReason::kCollision);
        } else {
          fx->record_decode(obs::DropStage::kWifiMac);
        }
      }

      if (collision) {
        ++s.stats.collisions;
        ++s.retries;
        s.cw = std::min(2 * s.cw + 1, kCwMax);
        s.backoff.reset();
        if (s.retries > kRetryLimit) {
          ++s.stats.dropped;
          s.retries = 0;
          s.cw = kCwMin;
          pop_frame(s);
          if (auto* m = obs::metrics()) {
            m->counter("wifi.mac.drops_total").add(1);
          }
        }
      } else {
        ++s.stats.delivered;
        s.stats.bytes_delivered += frame.size;
        s.retries = 0;
        s.cw = kCwMin;
        s.backoff.reset();
        if (s.head < s.queue.size() &&
            s.queue[s.head].arrival <= tx_time) {
          pop_frame(s);
        }
        if (frame.is_cts) {
          nav_until_ = std::max(
              nav_until_, tx_time + airtime_us(frame.size, frame.rate) +
                              frame.nav_us);
        }
      }
    }

    // Busy time: the frame(s) plus SIFS + ACK on success (data only).
    TimeUs busy = longest_air;
    if (!collision) {
      const auto& last = log_.back().packet;
      if (last.kind == FrameKind::kData) {
        busy += kSifsUs + airtime_us(14, 24.0);
      }
    }
    busy_until_ = tx_time + busy;
    airtime_total_ += busy;
    if (auto* m = obs::metrics()) {
      m->counter("wifi.mac.airtime_us")
          .add(static_cast<std::uint64_t>(busy.ticks()));
    }
    now_ = busy_until_;
  }
}

PacketTimeline DcfMac::delivered_timeline() const {
  PacketTimeline out;
  for (const auto& f : log_) {
    if (!f.collided && f.packet.kind == FrameKind::kData) {
      out.push_back(f.packet);
    }
  }
  return out;
}

const StationStats& DcfMac::stats(std::uint32_t station) const {
  return stations_.at(station).stats;
}

double DcfMac::utilisation() const {
  if (now_ <= TimeUs{}) return 0.0;
  return static_cast<double>(airtime_total_.ticks()) /
         static_cast<double>(now_.ticks());
}

}  // namespace wb::wifi
