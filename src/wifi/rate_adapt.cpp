#include "wifi/rate_adapt.h"

#include <cmath>

#include "util/check.h"

namespace wb::wifi {

Db required_snr_db(double rate_mbps) {
  // Standard OFDM demodulation thresholds (dB) for 802.11g rates.
  if (rate_mbps <= 6.0) return Db{5.0};
  if (rate_mbps <= 9.0) return Db{6.0};
  if (rate_mbps <= 12.0) return Db{8.0};
  if (rate_mbps <= 18.0) return Db{10.5};
  if (rate_mbps <= 24.0) return Db{13.5};
  if (rate_mbps <= 36.0) return Db{17.5};
  if (rate_mbps <= 48.0) return Db{21.5};
  return Db{23.5};
}

double packet_error_rate(Db snr_db, double rate_mbps,
                         std::size_t size_bytes) {
  // Logistic PER curve centred on the rate's threshold, sharpened to the
  // ~2 dB transition width of real OFDM links; frame length shifts the
  // effective threshold slightly (10*log10 of the bit count ratio / 10).
  const double len_shift =
      1.0 * std::log10(static_cast<double>(size_bytes) / 1000.0);
  const double margin =
      (snr_db - (required_snr_db(rate_mbps) + Db{len_shift})).value();
  return 1.0 / (1.0 + std::exp(2.2 * margin));
}

ArfRateAdapter::ArfRateAdapter(Params p, std::size_t initial_index)
    : params_(p), index_(initial_index) {
  WB_INVARIANT(index_ < kNumPhyRates);
}

void ArfRateAdapter::on_result(bool success) {
  if (success) {
    failure_streak_ = 0;
    if (++success_streak_ >= params_.up_after &&
        index_ + 1 < kNumPhyRates) {
      ++index_;
      success_streak_ = 0;
    }
  } else {
    success_streak_ = 0;
    if (++failure_streak_ >= params_.down_after && index_ > 0) {
      --index_;
      failure_streak_ = 0;
    }
  }
}

}  // namespace wb::wifi
