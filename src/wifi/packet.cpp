#include "wifi/packet.h"

namespace wb::wifi {

const char* to_string(FrameKind k) {
  switch (k) {
    case FrameKind::kData:
      return "DATA";
    case FrameKind::kBeacon:
      return "BEACON";
    case FrameKind::kCtsToSelf:
      return "CTS_TO_SELF";
    case FrameKind::kAck:
      return "ACK";
    case FrameKind::kProbe:
      return "PROBE";
  }
  return "UNKNOWN";
}

}  // namespace wb::wifi
