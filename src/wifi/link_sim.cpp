#include "wifi/link_sim.h"

#include <cmath>

#include "util/stats.h"

namespace wb::wifi {

LinkSimResult run_link_sim(const LinkSimConfig& cfg, TimeUs duration) {
  sim::RngStream rng(cfg.seed);
  auto rng_fade = rng.fork("fading");
  auto rng_loss = rng.fork("loss");
  auto rng_mac = rng.fork("mac");

  ArfRateAdapter adapter;
  LinkSimResult res;

  const TimeUs tag_half_period_us =
      cfg.tag_depth_db > Db{}
          ? TimeUs{static_cast<std::int64_t>(5e5 / cfg.tag_bit_rate_bps)}
          : TimeUs{};

  double t = 0.0;
  const double end = static_cast<double>(duration.ticks());
  const double interval_us = 500'000.0;
  double interval_end = interval_us;
  double interval_bits = 0.0;

  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
  RunningStats rate_stats;

  while (t < end) {
    // DIFS + random backoff (CW of 16 slots, 9 us each).
    t += 28.0 + 9.0 * static_cast<double>(rng_mac.uniform_int(16));
    // External contention: with probability busy_frac the medium is taken
    // and we wait out a foreign frame.
    while (rng_mac.chance(cfg.contention_busy_frac)) {
      t += rng_mac.uniform(80.0, 1200.0);  // foreign frame + its overhead
    }

    const double rate = adapter.current_rate_mbps();
    rate_stats.push(rate);
    const double airtime =
        static_cast<double>(airtime_us(cfg.payload_bytes, rate).ticks());

    // Tag square wave: the reflection alternately adds and removes a
    // small amount of multipath energy.
    Db tag_term{};
    if (tag_half_period_us > TimeUs{}) {
      const bool phase =
          (TimeUs{static_cast<std::int64_t>(t)} / tag_half_period_us) % 2 ==
          0;
      tag_term = phase ? cfg.tag_depth_db : -cfg.tag_depth_db;
    }
    const Db snr =
        cfg.base_snr_db +
        Db{rng_fade.normal(0.0, cfg.snr_jitter_db.value())} + tag_term;
    const bool ok =
        !rng_loss.chance(packet_error_rate(snr, rate, cfg.payload_bytes));
    adapter.on_result(ok);
    ++sent;
    if (!ok) ++lost;

    t += airtime + 10.0 /*SIFS*/ + 30.0 /*ACK*/;
    if (ok) {
      interval_bits += static_cast<double>(cfg.payload_bytes) * 8.0;
    }
    while (t >= interval_end) {
      res.per_interval_mbps.push_back(interval_bits / interval_us);
      interval_bits = 0.0;
      interval_end += interval_us;
    }
  }

  RunningStats tput;
  for (double v : res.per_interval_mbps) tput.push(v);
  res.mean_throughput_mbps = tput.mean();
  res.stddev_throughput_mbps = tput.stddev();
  res.mean_rate_mbps = rate_stats.mean();
  res.per = sent ? static_cast<double>(lost) / static_cast<double>(sent)
                 : 0.0;
  return res;
}

}  // namespace wb::wifi
