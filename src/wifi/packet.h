// Wi-Fi packet representation used across the simulator. We model what
// matters to Wi-Fi Backscatter: who transmitted, when, for how long, at
// what PHY rate — not the full 802.11 frame format.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"

namespace wb::wifi {

enum class FrameKind : std::uint8_t {
  kData,
  kBeacon,
  kCtsToSelf,
  kAck,
  kProbe,  ///< misc management traffic seen in ambient captures
};

/// 802.11g PHY rates in Mbps, the set the paper's devices negotiate.
inline constexpr double kPhyRatesMbps[] = {6, 9, 12, 18, 24, 36, 48, 54};
inline constexpr std::size_t kNumPhyRates = 8;

/// A transmitted frame on the simulated medium.
struct WifiPacket {
  std::uint64_t id = 0;
  std::uint32_t source = 0;  ///< station id of transmitter
  std::uint32_t dest = 0;    ///< station id of receiver (0 = broadcast)
  FrameKind kind = FrameKind::kData;
  TimeUs start_us{0};
  TimeUs duration_us{0};
  double rate_mbps = 54.0;
  std::uint32_t size_bytes = 1500;

  /// NAV reservation carried by the frame (CTS_to_SELF), microseconds
  /// after frame end during which compliant stations defer.
  TimeUs nav_us{0};

  TimeUs end_us() const { return start_us + duration_us; }
};

/// Airtime of a payload at a PHY rate, including a fixed 20 us
/// preamble+PLCP overhead (802.11g long preamble is 20 us).
inline TimeUs airtime_us(std::uint32_t size_bytes, double rate_mbps) {
  const double payload_us =
      static_cast<double>(size_bytes) * 8.0 / rate_mbps;
  return TimeUs::from_us(payload_us + 20.0 + 0.5);
}

/// The smallest frame the paper uses on the downlink: ~40-50 us at
/// 54 Mbps (§4.1).
inline constexpr TimeUs kMinPacketUs{40};

/// 802.11 limits a CTS_to_SELF reservation to 32 ms (§4.1).
inline constexpr TimeUs kMaxNavUs{32'000};

const char* to_string(FrameKind k);

}  // namespace wb::wifi
