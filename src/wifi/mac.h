// 802.11 DCF medium-access simulation: CSMA/CA with binary exponential
// backoff, DIFS/SIFS spacing, ACKs, collisions, and NAV reservations
// (CTS_to_SELF) — the substrate behind the paper's §4.1/§5 claims that a
// CTS_to_SELF reservation keeps unaware stations out of the downlink's
// silence periods, and behind helper-packet-rate behaviour under
// contention.
//
// The model is the standard slotted contention abstraction: when the
// medium goes idle for DIFS, each backlogged station counts down a random
// backoff in 9 us slots; the station(s) reaching zero first transmit, and
// simultaneous winners collide (both frames are marked collided and the
// stations double their contention windows). Capture effects, hidden
// terminals and propagation delay are out of scope — none of the paper's
// experiments depend on them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "wifi/packet.h"
#include "wifi/traffic.h"

namespace wb::wifi {

/// 802.11 DCF timing constants (802.11g, long slot).
inline constexpr TimeUs kSlotUs{9};
inline constexpr TimeUs kSifsUs{10};
inline constexpr TimeUs kDifsUs = kSifsUs + 2 * kSlotUs;  // 28 us
inline constexpr std::size_t kCwMin = 15;
inline constexpr std::size_t kCwMax = 1023;
inline constexpr std::size_t kRetryLimit = 7;

/// Per-station accounting.
struct StationStats {
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
  std::uint64_t dropped = 0;  ///< retry limit exceeded
  std::uint64_t bytes_delivered = 0;
};

/// A frame that went on the air (successfully or not).
struct AirFrame {
  WifiPacket packet;
  bool collided = false;
};

/// DCF simulation over one shared medium.
class DcfMac {
 public:
  explicit DcfMac(sim::RngStream rng);

  /// Register a station; returns its id (also stamped on its frames).
  std::uint32_t add_station();

  /// Saturated station: always has a frame of `size_bytes` at `rate_mbps`
  /// ready (models a backlogged UDP source or a 1 GB download).
  void make_saturated(std::uint32_t station, std::uint32_t size_bytes,
                      double rate_mbps);

  /// Enqueue one frame for transmission at the given virtual time (must
  /// not be earlier than frames already enqueued for this station).
  void enqueue(std::uint32_t station, TimeUs arrival, std::uint32_t size,
               double rate_mbps);

  /// Enqueue Poisson arrivals for a station over [0, duration).
  void enqueue_poisson(std::uint32_t station, double pps, TimeUs duration,
                       std::uint32_t size, double rate_mbps,
                       sim::RngStream& rng);

  /// Reserve the medium via CTS_to_SELF at (or as soon as possible after)
  /// `at`: the CTS frame contends like any frame; once it wins, the NAV
  /// holds everyone else off for `nav_us`.
  void reserve(std::uint32_t station, TimeUs at, TimeUs nav_us);

  /// Run the contention process until virtual time `until`.
  void run_until(TimeUs until);

  /// Everything that went on the air, in time order.
  const std::vector<AirFrame>& log() const { return log_; }

  /// Successful data frames only, as a timeline (collisions excluded) —
  /// the packets a monitor-mode reader would actually decode.
  PacketTimeline delivered_timeline() const;

  const StationStats& stats(std::uint32_t station) const;

  /// Medium utilisation in [0,1] over the simulated horizon.
  double utilisation() const;

  TimeUs now() const { return now_; }

 private:
  struct Pending {
    TimeUs arrival;
    std::uint32_t size;
    double rate;
    bool is_cts = false;
    TimeUs nav_us{0};
  };
  struct Station {
    std::vector<Pending> queue;  ///< FIFO (front = index head)
    std::size_t head = 0;
    bool saturated = false;
    std::uint32_t sat_size = 1'500;
    double sat_rate = 54.0;
    std::size_t cw = kCwMin;
    std::size_t retries = 0;
    std::optional<std::size_t> backoff;  ///< remaining slots
    StationStats stats;
  };

  bool has_frame(const Station& s, TimeUs at) const;
  const Pending frame_of(Station& s, TimeUs at);
  void pop_frame(Station& s);
  TimeUs next_arrival_after(TimeUs t) const;

  sim::RngStream rng_;
  std::vector<Station> stations_;
  std::vector<AirFrame> log_;
  TimeUs now_{0};
  TimeUs busy_until_{0};  ///< medium busy (frames + SIFS + ACK)
  TimeUs nav_until_{0};   ///< virtual carrier sense
  TimeUs airtime_total_{0};
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace wb::wifi
