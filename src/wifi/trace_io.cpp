#include "wifi/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/parse.h"

namespace wb::wifi {
namespace {

std::string header_line() {
  std::ostringstream os;
  os << "timestamp_us,source,has_csi";
  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    os << ",rssi_a" << a;
  }
  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      os << ",csi_" << a << "_" << s;
    }
  }
  return os.str();
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) out.push_back(cell);
  // A trailing empty cell ("...,") is dropped by getline; normalise.
  if (!line.empty() && line.back() == ',') out.push_back("");
  return out;
}

[[noreturn]] void fail_cell(std::size_t line_no, std::size_t column,
                            const std::string& what,
                            const std::string& cell) {
  throw std::runtime_error("capture csv: line " + std::to_string(line_no) +
                           ", column " + std::to_string(column) + ": " +
                           what + " (got \"" + cell + "\")");
}

/// Strict full-cell parse; `column` is the 1-based cell index for errors.
template <typename T>
T parse_cell(const std::string& cell, std::size_t line_no, std::size_t column,
             const char* what) {
  T value{};
  if (!util::parse_full(cell, value)) {
    fail_cell(line_no, column, std::string("expected ") + what, cell);
  }
  return value;
}

}  // namespace

std::size_t write_capture_csv(std::ostream& os, const CaptureTrace& trace) {
  // Round-trip-exact doubles.
  os << std::setprecision(17);
  os << header_line() << "\n";
  for (const auto& rec : trace) {
    os << rec.timestamp_us.ticks() << ',' << rec.source << ','
       << (rec.has_csi ? 1 : 0);
    for (double r : rec.rssi_dbm) os << ',' << r;
    for (const auto& ant : rec.csi) {
      for (double v : ant) {
        os << ',';
        if (rec.has_csi) os << v;
      }
    }
    os << '\n';
  }
  return trace.size();
}

CaptureTrace read_capture_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("capture csv: empty input");
  }
  if (line != header_line()) {
    throw std::runtime_error("capture csv: unexpected header");
  }
  const std::size_t expected_cells =
      3 + phy::kNumAntennas + kNumCsiStreams;

  CaptureTrace trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split(line);
    if (cells.size() != expected_cells) {
      throw std::runtime_error("capture csv: wrong cell count on line " +
                               std::to_string(line_no));
    }
    CaptureRecord rec;
    std::size_t i = 0;
    rec.timestamp_us = TimeUs{parse_cell<std::int64_t>(
        cells[i], line_no, i + 1, "integer timestamp_us")};
    ++i;
    // Unsigned parse: rejects negative source ids outright instead of
    // wrapping them around like std::stoul would.
    rec.source =
        parse_cell<std::uint32_t>(cells[i], line_no, i + 1,
                                  "non-negative integer source");
    ++i;
    if (cells[i] != "0" && cells[i] != "1") {
      fail_cell(line_no, i + 1, "has_csi must be 0 or 1", cells[i]);
    }
    rec.has_csi = cells[i] == "1";
    ++i;
    for (auto& r : rec.rssi_dbm) {
      r = parse_cell<double>(cells[i], line_no, i + 1, "rssi value");
      ++i;
    }
    for (auto& ant : rec.csi) {
      for (auto& v : ant) {
        if (rec.has_csi) {
          v = parse_cell<double>(cells[i], line_no, i + 1, "csi value");
        } else {
          // RSSI-only rows carry empty CSI cells; anything else means the
          // row is misaligned with the header.
          if (!cells[i].empty()) {
            fail_cell(line_no, i + 1,
                      "csi cell must be empty when has_csi is 0", cells[i]);
          }
          v = 0.0;
        }
        ++i;
      }
    }
    trace.push_back(rec);
  }
  return trace;
}

std::size_t save_capture_csv(const std::string& path,
                             const CaptureTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  return write_capture_csv(os, trace);
}

CaptureTrace load_capture_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return read_capture_csv(is);
}

std::string capture_csv_string(const CaptureTrace& trace) {
  std::ostringstream os;
  write_capture_csv(os, trace);
  return std::move(os).str();
}

}  // namespace wb::wifi
