#include "wifi/replay.h"

#include "util/check.h"

namespace wb::wifi {

std::vector<ReplayStream> fan_out(const CaptureTrace& trace,
                                  std::size_t sessions, TimeUs stagger_us,
                                  std::uint32_t first_session) {
  WB_REQUIRE(stagger_us >= TimeUs{0}, "stagger must be non-negative");
  std::vector<ReplayStream> streams(sessions);
  for (std::size_t k = 0; k < sessions; ++k) {
    streams[k].session =
        first_session + static_cast<std::uint32_t>(k);
    streams[k].offset_us = stagger_us * static_cast<std::int64_t>(k);
    streams[k].trace = &trace;
  }
  return streams;
}

MultiSessionFeed::MultiSessionFeed(std::vector<ReplayStream> streams)
    : streams_(std::move(streams)), cursor_(streams_.size(), 0) {}

bool MultiSessionFeed::next(std::uint32_t& session, CaptureRecord& record) {
  // Linear scan over the (few) streams: pick the earliest shifted
  // timestamp, lowest session id on ties. Strict `<` on both keys keeps
  // the choice independent of stream declaration order.
  std::size_t best = streams_.size();
  TimeUs best_ts{0};
  std::uint32_t best_session = 0;
  for (std::size_t k = 0; k < streams_.size(); ++k) {
    const auto* trace = streams_[k].trace;
    if (trace == nullptr || cursor_[k] >= trace->size()) continue;
    const TimeUs ts =
        (*trace)[cursor_[k]].timestamp_us + streams_[k].offset_us;
    if (best == streams_.size() || ts < best_ts ||
        (ts == best_ts && streams_[k].session < best_session)) {
      best = k;
      best_ts = ts;
      best_session = streams_[k].session;
    }
  }
  if (best == streams_.size()) return false;
  session = streams_[best].session;
  record = (*streams_[best].trace)[cursor_[best]];
  record.timestamp_us = best_ts;
  ++cursor_[best];
  return true;
}

std::size_t MultiSessionFeed::remaining() const {
  std::size_t n = 0;
  for (std::size_t k = 0; k < streams_.size(); ++k) {
    if (streams_[k].trace == nullptr) continue;
    n += streams_[k].trace->size() - cursor_[k];
  }
  return n;
}

void MultiSessionFeed::rewind() {
  for (auto& c : cursor_) c = 0;
}

}  // namespace wb::wifi
