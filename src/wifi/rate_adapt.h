// 802.11 PHY rate adaptation (ARF-style, as shipped in the paper-era
// devices whose "default bit rate adaptation algorithms" §9 leaves on).
//
// Also provides the SNR -> packet-error-rate model used by the link-level
// simulator: a logistic curve per PHY rate around its demodulation
// threshold, the standard abstraction for packet-level Wi-Fi simulation.
#pragma once

#include <cstddef>

#include "util/units.h"
#include "wifi/packet.h"

namespace wb::wifi {

/// Minimum SNR at which each 802.11g rate starts working well.
Db required_snr_db(double rate_mbps);

/// Packet error probability at a given SNR for a given rate and payload
/// size (longer frames fail more at equal SNR).
double packet_error_rate(Db snr_db, double rate_mbps,
                         std::size_t size_bytes);

/// Automatic-Rate-Fallback adapter: step the rate up after a streak of
/// successes, down after consecutive failures.
class ArfRateAdapter {
 public:
  struct Params {
    std::size_t up_after = 10;   ///< consecutive successes to move up
    std::size_t down_after = 2;  ///< consecutive failures to move down
  };

  ArfRateAdapter() : ArfRateAdapter(Params{}) {}
  explicit ArfRateAdapter(Params p, std::size_t initial_index = 3);

  double current_rate_mbps() const { return kPhyRatesMbps[index_]; }
  std::size_t rate_index() const { return index_; }

  /// Report the outcome of one transmission at the current rate.
  void on_result(bool success);

 private:
  Params params_;
  std::size_t index_;
  std::size_t success_streak_ = 0;
  std::size_t failure_streak_ = 0;
};

}  // namespace wb::wifi
