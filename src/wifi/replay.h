// Deterministic multi-session trace replay: turns recorded (or synthetic)
// capture traces into the interleaved per-session record stream a live
// capture service would see from N concurrent monitor-mode NICs.
//
// Each ReplayStream names a source trace, a session id, and a time
// offset; MultiSessionFeed merges the streams in *global shifted
// timestamp order* (ties broken by ascending session id), so the
// interleave is a pure function of the inputs — the property wb::serve's
// determinism tests lean on. The feed never copies the underlying
// traces; next() materialises one shifted record at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.h"
#include "wifi/capture.h"

namespace wb::wifi {

/// One replayed stream: `trace`'s records, timestamps shifted by
/// `offset_us`, attributed to `session`.
struct ReplayStream {
  std::uint32_t session = 0;
  TimeUs offset_us{0};
  const CaptureTrace* trace = nullptr;
};

/// Replays the same trace as `sessions` concurrent streams with session
/// ids first_session, first_session+1, … and start offsets staggered by
/// `stagger_us` per stream (stream k starts k * stagger_us later) — the
/// standard synthetic multi-session load for serve benches and smokes.
std::vector<ReplayStream> fan_out(const CaptureTrace& trace,
                                  std::size_t sessions, TimeUs stagger_us,
                                  std::uint32_t first_session = 0);

/// Merges N replay streams into one record sequence ordered by shifted
/// timestamp (ties: lowest session id first).
class MultiSessionFeed {
 public:
  /// Streams must each be internally time-ordered (CaptureTrace always
  /// is); null traces are treated as empty.
  explicit MultiSessionFeed(std::vector<ReplayStream> streams);

  /// Produces the next record in global order into the out-params;
  /// returns false when every stream is exhausted. The produced record is
  /// the source record with its timestamp shifted by the stream offset.
  bool next(std::uint32_t& session, CaptureRecord& record);

  /// Records not yet produced, across all streams.
  std::size_t remaining() const;

  /// Restart every stream from its beginning.
  void rewind();

 private:
  std::vector<ReplayStream> streams_;
  std::vector<std::size_t> cursor_;  ///< next record index per stream
};

}  // namespace wb::wifi
