// Packet-arrival workload models.
//
// The uplink decoder only cares about *when* helper packets arrive (each
// received packet is one channel sample), so most experiments consume a
// packet timeline: injected CBR traffic (§7.1-§7.2), Poisson ambient
// traffic, bursty Pareto on/off traffic (the "Internet traffic is bursty"
// concern of §5), a diurnal office profile (Fig 15), and AP beacons
// (Fig 16).
#pragma once

#include <vector>

#include "sim/rng.h"
#include "util/units.h"
#include "wifi/packet.h"

namespace wb::wifi {

using PacketTimeline = std::vector<WifiPacket>;

/// Common knobs for timeline generators.
struct TrafficParams {
  std::uint32_t source = 1;          ///< station id stamped on packets
  std::uint32_t size_bytes = 1000;   ///< payload size
  double rate_mbps = 54.0;           ///< PHY rate (sets airtime)
};

/// Constant-bit-rate injection: `pps` packets per second with small
/// uniform jitter (fraction of the interval), like the paper's
/// delay-spaced injected traffic.
PacketTimeline make_cbr_timeline(double pps, TimeUs duration,
                                 const TrafficParams& p, sim::RngStream& rng,
                                 double jitter_frac = 0.1);

/// Poisson arrivals at mean rate `pps`.
PacketTimeline make_poisson_timeline(double pps, TimeUs duration,
                                     const TrafficParams& p,
                                     sim::RngStream& rng);

/// Bursty on/off traffic: Pareto-distributed burst and idle durations, with
/// Poisson arrivals at `burst_pps` inside bursts. Long-run average rate is
/// burst_pps * on_fraction.
struct BurstyParams {
  double burst_pps = 3000.0;    ///< arrival rate inside a burst
  double mean_burst_ms = 50.0;  ///< mean burst length
  double mean_idle_ms = 100.0;  ///< mean idle gap
  double pareto_alpha = 1.5;    ///< tail index for burst/idle lengths
};
PacketTimeline make_bursty_timeline(const BurstyParams& b, TimeUs duration,
                                    const TrafficParams& p,
                                    sim::RngStream& rng);

/// Beacon schedule: `beacons_per_sec` evenly spaced management frames
/// (102.4 ms default interval == 9.77 beacons/s).
PacketTimeline make_beacon_timeline(double beacons_per_sec, TimeUs duration,
                                    std::uint32_t source, sim::RngStream& rng);

/// Diurnal office network load (packets/s) as a function of the time of
/// day in hours [0,24). Shape follows Fig 15: several hundred pps around
/// lunch, a mid-afternoon trough, and an evening peak above 1000 pps.
double office_load_pps(double hour_of_day);

/// Ambient traffic over a measurement window starting at `start_hour`,
/// Poisson with the diurnal rate, re-evaluated every minute.
PacketTimeline make_office_timeline(double start_hour, TimeUs duration,
                                    const TrafficParams& p,
                                    sim::RngStream& rng);

/// Realistic ambient mix at mean rate `pps`: full-size data frames at a
/// spread of PHY rates, each followed by a short ACK, plus control and
/// management frames. Produces the short-interval structure a tag's
/// downlink preamble matcher must reject (Fig 18).
PacketTimeline make_ambient_mix_timeline(double pps, TimeUs duration,
                                         sim::RngStream& rng);

/// Sort a merged set of timelines by start time (stable for equal starts).
PacketTimeline merge_timelines(std::vector<PacketTimeline> timelines);

/// Count of packets whose start falls in [from, to).
std::size_t packets_in_window(const PacketTimeline& t, TimeUs from,
                              TimeUs to);

}  // namespace wb::wifi
