// Commodity-NIC measurement model: degrades the PHY's complex channel
// truth into what an off-the-shelf card actually reports.
//
// The paper's decoding algorithm exists to survive exactly these
// artefacts, so the model injects each one explicitly:
//   * amplitude-only CSI with per-packet estimation noise and coarse
//     quantisation (the 5300 reports ~8-bit values);
//   * occasional spurious whole-snapshot CSI jumps ("the Intel cards used
//     in our experiments report spurious changes in the CSI once every so
//     often", §3.2) — motivates the decoder's hysteresis;
//   * one chronically weak antenna ("one of the antennas on our Intel
//     device almost always reported significantly low CSI values", §7.1);
//   * RSSI as a single cumulative power, quantised to 1 dB — why RSSI
//     decoding underperforms CSI (§3.3);
//   * no CSI on beacon frames ("Intel cards do not currently provide CSI
//     information for beacon packets", §7.5).
#pragma once

#include "phy/uplink_channel.h"
#include "sim/rng.h"
#include "wifi/capture.h"
#include "wifi/packet.h"

namespace wb::wifi {

struct NicModelParams {
  /// Std-dev of complex channel-estimation noise per sub-channel, as a
  /// fraction of the RMS direct-path amplitude (SNR of the CSI estimate).
  double csi_noise_rel = 0.08;

  /// CSI amplitude reporting scale: reported = |H| / rms(|H|) * csi_scale,
  /// then quantised. Puts values in the single/double digits like the
  /// 5300 (Fig 3 shows amplitudes of ~2-17).
  double csi_scale = 8.0;

  /// CSI quantisation step in reported units (8-bit-ish granularity).
  double csi_quant_step = 0.02;

  /// Log-normal spread (sigma of ln) of the per-stream noise scale: the
  /// estimation noise differs visibly between sub-channels on real cards
  /// (Fig 4: "the variance in the channel measurements ... changes
  /// significantly with the sub-channel").
  double csi_noise_spread = 0.8;

  /// Probability per packet of a spurious CSI event: the whole snapshot is
  /// scaled by a random factor for that packet.
  double spurious_prob = 0.006;

  /// Spurious event magnitude: scale factor drawn log-uniformly in
  /// [1/spurious_scale, spurious_scale].
  double spurious_scale = 1.6;

  /// Index of the chronically weak antenna; kNumAntennas to disable.
  std::size_t weak_antenna = 2;

  /// Amplitude factor applied to the weak antenna's CSI.
  double weak_antenna_gain = 0.08;

  /// Per-packet RSSI measurement jitter (AGC + reporting), dB std-dev,
  /// applied before quantisation. Real cards bounce a dB or so packet to
  /// packet even in a frozen channel.
  Db rssi_noise_db{0.18};

  /// RSSI quantisation step, dB.
  Db rssi_quant_db{1.0};

  /// Thermal noise power per sub-channel, dBm, adding an RSSI noise floor.
  Dbm noise_floor_dbm{-95.0};
};

/// Stateless-per-packet NIC front end (holds only its RNG + calibration).
class NicModel {
 public:
  NicModel(const NicModelParams& params, sim::RngStream rng);

  /// Fix the CSI reporting reference to the RMS amplitude of `h` (call once
  /// with a representative snapshot; the AGC reference must not track the
  /// backscatter modulation packet-by-packet or it would erase it).
  void calibrate(const phy::CsiMatrix& h);

  /// Produce the capture record a monitor-mode NIC would emit for a packet
  /// received through channel truth `h` at `t`.
  CaptureRecord measure(const phy::CsiMatrix& h, TimeUs t,
                        std::uint32_t source_id, FrameKind kind);

  const NicModelParams& params() const { return params_; }
  double reference_amplitude() const { return ref_amp_; }

 private:
  NicModelParams params_;
  sim::RngStream rng_;
  double ref_amp_ = 1.0;
  bool calibrated_ = false;
  /// Static per-(antenna, sub-channel) noise scale factors.
  std::array<std::array<double, phy::kNumSubchannels>, phy::kNumAntennas>
      noise_factor_{};
};

}  // namespace wb::wifi
