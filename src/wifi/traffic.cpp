#include "wifi/traffic.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace wb::wifi {
namespace {

/// Reports a freshly generated timeline to the installed metrics registry
/// (wifi.traffic.*); returns it unchanged so makers can `return note(out)`.
PacketTimeline note_generated(PacketTimeline out) {
  if (auto* m = obs::metrics()) {
    m->counter("wifi.traffic.packets_generated_total").add(out.size());
    TimeUs air{0};
    for (const WifiPacket& p : out) air += p.duration_us;
    m->counter("wifi.traffic.generated_airtime_us")
        .add(static_cast<std::uint64_t>(air.ticks()));
  }
  return out;
}

WifiPacket data_packet(TimeUs start, const TrafficParams& p,
                       std::uint64_t id) {
  WifiPacket pkt;
  pkt.id = id;
  pkt.source = p.source;
  pkt.kind = FrameKind::kData;
  pkt.start_us = start;
  pkt.size_bytes = p.size_bytes;
  pkt.rate_mbps = p.rate_mbps;
  pkt.duration_us = airtime_us(p.size_bytes, p.rate_mbps);
  return pkt;
}

}  // namespace

PacketTimeline make_cbr_timeline(double pps, TimeUs duration,
                                 const TrafficParams& p, sim::RngStream& rng,
                                 double jitter_frac) {
  WB_REQUIRE(pps > 0.0, "packet rate must be positive");
  PacketTimeline out;
  const double interval_us = 1e6 / pps;
  std::uint64_t id = 0;
  for (double t = 0.0; t < static_cast<double>(duration.ticks());
       t += interval_us) {
    const double jitter =
        rng.uniform(-jitter_frac, jitter_frac) * interval_us;
    const double start = std::max(0.0, t + jitter);
    if (start >= static_cast<double>(duration.ticks())) break;
    out.push_back(data_packet(TimeUs{static_cast<std::int64_t>(start)}, p, id++));
  }
  std::sort(out.begin(), out.end(),
            [](const WifiPacket& a, const WifiPacket& b) {
              return a.start_us < b.start_us;
            });
  return note_generated(std::move(out));
}

PacketTimeline make_poisson_timeline(double pps, TimeUs duration,
                                     const TrafficParams& p,
                                     sim::RngStream& rng) {
  WB_REQUIRE(pps > 0.0, "packet rate must be positive");
  PacketTimeline out;
  const double mean_gap_us = 1e6 / pps;
  std::uint64_t id = 0;
  double t = rng.exponential(mean_gap_us);
  while (t < static_cast<double>(duration.ticks())) {
    out.push_back(data_packet(TimeUs{static_cast<std::int64_t>(t)}, p, id++));
    t += rng.exponential(mean_gap_us);
  }
  return note_generated(std::move(out));
}

PacketTimeline make_bursty_timeline(const BurstyParams& b, TimeUs duration,
                                    const TrafficParams& p,
                                    sim::RngStream& rng) {
  PacketTimeline out;
  std::uint64_t id = 0;
  double t = 0.0;
  const double dur = static_cast<double>(duration.ticks());
  // Bounded Pareto keeps single bursts/idles from swallowing the whole
  // experiment while preserving heavy-tailed variability.
  const double burst_lo = b.mean_burst_ms * 0.2;
  const double burst_hi = b.mean_burst_ms * 20.0;
  const double idle_lo = b.mean_idle_ms * 0.2;
  const double idle_hi = b.mean_idle_ms * 20.0;
  while (t < dur) {
    const double burst_ms = rng.pareto(b.pareto_alpha, burst_lo, burst_hi);
    const double burst_end = std::min(dur, t + burst_ms * 1e3);
    const double gap_us = 1e6 / b.burst_pps;
    double pt = t + rng.exponential(gap_us);
    while (pt < burst_end) {
      out.push_back(data_packet(TimeUs{static_cast<std::int64_t>(pt)}, p, id++));
      pt += rng.exponential(gap_us);
    }
    const double idle_ms = rng.pareto(b.pareto_alpha, idle_lo, idle_hi);
    t = burst_end + idle_ms * 1e3;
  }
  return note_generated(std::move(out));
}

PacketTimeline make_beacon_timeline(double beacons_per_sec, TimeUs duration,
                                    std::uint32_t source,
                                    sim::RngStream& rng) {
  WB_REQUIRE(beacons_per_sec > 0.0, "beacon rate must be positive");
  PacketTimeline out;
  const double interval_us = 1e6 / beacons_per_sec;
  std::uint64_t id = 0;
  for (double t = 0.0; t < static_cast<double>(duration.ticks());
       t += interval_us) {
    WifiPacket pkt;
    pkt.id = id++;
    pkt.source = source;
    pkt.kind = FrameKind::kBeacon;
    // Beacons go out at a basic rate and carry ~100 bytes of management
    // payload; exact TBTT has sub-ms scheduling jitter on real APs.
    pkt.start_us =
        TimeUs::from_us(t + rng.uniform(0.0, 300.0));
    pkt.size_bytes = 100;
    pkt.rate_mbps = 6.0;
    pkt.duration_us = airtime_us(pkt.size_bytes, pkt.rate_mbps);
    out.push_back(pkt);
  }
  return note_generated(std::move(out));
}

double office_load_pps(double hour_of_day) {
  // Piecewise-linear profile anchored on Fig 15's measured range
  // (~100-1100 pps between noon and 8 PM, rising through the afternoon
  // with a dip around 4 PM and an evening peak).
  struct Anchor {
    double hour;
    double pps;
  };
  static constexpr Anchor anchors[] = {
      {0.0, 60},    {6.0, 60},   {9.0, 350},  {12.0, 520}, {13.5, 700},
      {15.0, 420},  {16.0, 300}, {17.5, 650}, {19.0, 1050}, {20.0, 900},
      {22.0, 300},  {24.0, 60},
  };
  const double h = std::fmod(std::fmod(hour_of_day, 24.0) + 24.0, 24.0);
  for (std::size_t i = 1; i < std::size(anchors); ++i) {
    if (h <= anchors[i].hour) {
      const auto& a = anchors[i - 1];
      const auto& b = anchors[i];
      const double f = (h - a.hour) / (b.hour - a.hour);
      return a.pps + f * (b.pps - a.pps);
    }
  }
  return anchors[0].pps;
}

PacketTimeline make_office_timeline(double start_hour, TimeUs duration,
                                    const TrafficParams& p,
                                    sim::RngStream& rng) {
  PacketTimeline out;
  std::uint64_t id = 0;
  const double dur = static_cast<double>(duration.ticks());
  double t = 0.0;
  while (t < dur) {
    const double hour = start_hour + t / 3.6e9;
    // +-15% minute-to-minute fluctuation around the diurnal mean.
    const double pps =
        office_load_pps(hour) * rng.uniform(0.85, 1.15);
    const double minute_end = std::min(dur, t + 60e6);
    const double gap_us = 1e6 / std::max(1.0, pps);
    double pt = t + rng.exponential(gap_us);
    while (pt < minute_end) {
      out.push_back(data_packet(TimeUs{static_cast<std::int64_t>(pt)}, p, id++));
      pt += rng.exponential(gap_us);
    }
    t = minute_end;
  }
  return note_generated(std::move(out));
}

PacketTimeline make_ambient_mix_timeline(double pps, TimeUs duration,
                                         sim::RngStream& rng) {
  WB_REQUIRE(pps > 0.0, "packet rate must be positive");
  PacketTimeline out;
  std::uint64_t id = 0;
  const double dur = static_cast<double>(duration.ticks());
  // Each "arrival" is a data frame + its ACK, so halve the arrival rate to
  // keep the overall packet rate near `pps`.
  const double mean_gap_us = 2e6 / pps;
  double t = rng.exponential(mean_gap_us);
  while (t < dur) {
    const double kind = rng.uniform();
    WifiPacket pkt;
    pkt.id = id++;
    pkt.source = 1;
    pkt.start_us = TimeUs{static_cast<std::int64_t>(t)};
    if (kind < 0.6) {
      // A TCP-style train: 1-8 data frames separated by DIFS + backoff
      // (tens of microseconds), each followed by its SIFS + ACK. These
      // dense trains are what can accidentally resemble the downlink
      // preamble's transition-interval pattern.
      static constexpr double rates[] = {12.0, 24.0, 54.0};
      const std::size_t train = 1 + rng.uniform_int(8);
      TimeUs cursor = pkt.start_us;
      for (std::size_t f = 0; f < train; ++f) {
        WifiPacket data;
        data.id = id++;
        data.source = 1;
        data.kind = FrameKind::kData;
        data.start_us = cursor;
        data.rate_mbps = rates[rng.uniform_int(3)];
        data.size_bytes =
            100 + static_cast<std::uint32_t>(rng.uniform_int(1401));
        data.duration_us = airtime_us(data.size_bytes, data.rate_mbps);
        out.push_back(data);
        // SIFS + ACK from the receiver.
        WifiPacket ack;
        ack.id = id++;
        ack.source = 2;
        ack.kind = FrameKind::kAck;
        ack.start_us = data.end_us() + TimeUs{10};
        ack.size_bytes = 14;
        ack.rate_mbps = 24.0;
        ack.duration_us = airtime_us(ack.size_bytes, ack.rate_mbps);
        out.push_back(ack);
        // DIFS (28 us) + random backoff slots before the next frame.
        cursor = ack.end_us() + TimeUs{28} +
                 TimeUs{static_cast<std::int64_t>(
                     rng.uniform_int(10) * 9)};
      }
      t = static_cast<double>(cursor.ticks());
    } else if (kind < 0.9) {
      // Short control/QoS-null style frames.
      pkt.kind = FrameKind::kProbe;
      pkt.size_bytes = 14 + static_cast<std::uint32_t>(rng.uniform_int(60));
      pkt.rate_mbps = 24.0;
      pkt.duration_us = airtime_us(pkt.size_bytes, pkt.rate_mbps);
      out.push_back(pkt);
    } else {
      // Management at a basic rate.
      pkt.kind = FrameKind::kProbe;
      pkt.size_bytes = 100 + static_cast<std::uint32_t>(rng.uniform_int(200));
      pkt.rate_mbps = 6.0;
      pkt.duration_us = airtime_us(pkt.size_bytes, pkt.rate_mbps);
      out.push_back(pkt);
    }
    t += rng.exponential(mean_gap_us);
  }
  return note_generated(std::move(out));
}

PacketTimeline merge_timelines(std::vector<PacketTimeline> timelines) {
  PacketTimeline out;
  std::size_t total = 0;
  for (const auto& t : timelines) total += t.size();
  out.reserve(total);
  for (auto& t : timelines) {
    out.insert(out.end(), t.begin(), t.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const WifiPacket& a, const WifiPacket& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::size_t packets_in_window(const PacketTimeline& t, TimeUs from,
                              TimeUs to) {
  return static_cast<std::size_t>(std::count_if(
      t.begin(), t.end(), [from, to](const WifiPacket& p) {
        return p.start_us >= from && p.start_us < to;
      }));
}

}  // namespace wb::wifi
