#include "wifi/nic.h"

#include <cmath>

#include "util/check.h"

namespace wb::wifi {
namespace {

double rms_amplitude(const phy::CsiMatrix& h) {
  double acc = 0.0;
  for (const auto& ant : h) {
    for (const auto& c : ant) acc += std::norm(c);
  }
  return std::sqrt(acc / static_cast<double>(kNumCsiStreams));
}

}  // namespace

NicModel::NicModel(const NicModelParams& params, sim::RngStream rng)
    : params_(params), rng_(rng) {
  WB_REQUIRE(params.csi_noise_rel >= 0.0);
  WB_REQUIRE(params.spurious_prob >= 0.0 && params.spurious_prob <= 1.0);
  // kNumAntennas (one past the end) is the documented "no weak antenna"
  // sentinel; anything beyond that is a typo.
  WB_REQUIRE(params.weak_antenna <= phy::kNumAntennas,
             "weak antenna index out of range");
  auto spread_rng = rng_.fork("noise-spread");
  for (auto& ant : noise_factor_) {
    for (double& f : ant) {
      f = std::exp(params_.csi_noise_spread * spread_rng.normal());
    }
  }
}

void NicModel::calibrate(const phy::CsiMatrix& h) {
  const double rms = rms_amplitude(h);
  ref_amp_ = rms > 0.0 ? rms : 1.0;
  calibrated_ = true;
}

CaptureRecord NicModel::measure(const phy::CsiMatrix& h, TimeUs t,
                                std::uint32_t source_id, FrameKind kind) {
  if (!calibrated_) calibrate(h);

  CaptureRecord rec;
  rec.timestamp_us = t;
  rec.source = source_id;
  rec.has_csi = (kind != FrameKind::kBeacon);

  // Estimation noise scales with the typical channel amplitude: the CSI
  // estimator error is set by the packet's preamble SNR, which the direct
  // path dominates.
  const double noise_sd = params_.csi_noise_rel * ref_amp_;
  const double noise_mw = params_.noise_floor_dbm.to_mw().value();

  // Spurious whole-snapshot event?
  double spurious = 1.0;
  if (rng_.chance(params_.spurious_prob)) {
    const double lo = std::log(1.0 / params_.spurious_scale);
    const double hi = std::log(params_.spurious_scale);
    spurious = std::exp(rng_.uniform(lo, hi));
  }

  for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
    const double ant_gain =
        (a == params_.weak_antenna) ? params_.weak_antenna_gain : 1.0;
    double power_mw = 0.0;
    for (std::size_t s = 0; s < phy::kNumSubchannels; ++s) {
      const double sd = noise_sd * ant_gain * noise_factor_[a][s];
      const phy::Complex noisy =
          ant_gain * h[a][s] +
          phy::Complex{rng_.normal(0.0, sd), rng_.normal(0.0, sd)};
      power_mw += std::norm(noisy);

      if (rec.has_csi) {
        double amp = std::abs(noisy) / ref_amp_ * params_.csi_scale;
        amp *= spurious;
        // Quantise to the NIC's reporting granularity.
        if (params_.csi_quant_step > 0.0) {
          amp = std::round(amp / params_.csi_quant_step) *
                params_.csi_quant_step;
        }
        rec.csi[a][s] = amp;
      }
    }
    // RSSI: total in-band power plus thermal noise, quantised.
    double rssi = mw_to_dbm(power_mw +
                            noise_mw * static_cast<double>(
                                           phy::kNumSubchannels));
    rssi += rng_.normal(0.0, params_.rssi_noise_db.value());
    if (params_.rssi_quant_db > Db{}) {
      const double q = params_.rssi_quant_db.value();
      rssi = std::round(rssi / q) * q;
    }
    rec.rssi_dbm[a] = rssi;
  }
  return rec;
}

}  // namespace wb::wifi
