// Packet-level simulation of one Wi-Fi transmitter-receiver pair under
// rate adaptation, used to reproduce Fig 19: the effect of a continuously
// modulating backscatter tag on ordinary Wi-Fi throughput.
//
// The model walks virtual time through DIFS + backoff + DATA + SIFS + ACK
// cycles, draws per-packet success from the SNR->PER curve at the
// adapter's current rate, and accounts for external contention (the
// "class in the adjacent room" of §9) as a busy-medium fraction. The tag
// appears as a small square-wave perturbation of the received SNR whose
// depth comes from the same backscatter path-loss physics as the uplink
// channel model.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "util/units.h"
#include "wifi/rate_adapt.h"

namespace wb::wifi {

struct LinkSimConfig {
  /// Mean SNR of the transmitter->receiver link, dB.
  Db base_snr_db{28.0};

  /// Fast-fading jitter on per-packet SNR, dB std-dev.
  Db snr_jitter_db{1.5};

  /// Peak SNR perturbation caused by the tag's reflection, dB (0 = no
  /// tag). The tag alternates the channel between +depth and -depth.
  Db tag_depth_db{0.0};

  /// Tag bit rate driving the square wave, bits/s (ignored at depth 0).
  double tag_bit_rate_bps = 100.0;

  /// Fraction of airtime taken by other contending stations.
  double contention_busy_frac = 0.0;

  /// UDP payload per frame.
  std::uint32_t payload_bytes = 1470;

  std::uint64_t seed = 1;
};

struct LinkSimResult {
  double mean_throughput_mbps = 0.0;  ///< application throughput (MB-ish)
  double stddev_throughput_mbps = 0.0;
  double mean_rate_mbps = 0.0;        ///< average PHY rate chosen
  double per = 0.0;                   ///< overall packet error rate
  std::vector<double> per_interval_mbps;  ///< one sample per 500 ms
};

/// Run the pair for `duration` of virtual time and report throughput
/// statistics over 500 ms intervals (the paper's logging granularity).
LinkSimResult run_link_sim(const LinkSimConfig& cfg, TimeUs duration);

}  // namespace wb::wifi
