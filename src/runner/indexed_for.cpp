#include "runner/indexed_for.h"

#include <algorithm>
#include <exception>
#include <vector>

#include "runner/thread_pool.h"

namespace wb::runner {

void for_each_index(unsigned workers, std::size_t num_tasks,
                    const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;

  const unsigned effective = static_cast<unsigned>(
      std::min<std::size_t>(workers == 0 ? 1 : workers, num_tasks));
  if (effective <= 1) {
    // Serial path: the calling thread, in index order — exactly what the
    // pre-runner benches did, with no pool construction cost.
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }

  std::vector<std::exception_ptr> errors(num_tasks);
  {
    ThreadPool pool(effective);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      pool.submit([&task, &errors, i] {
        try {
          task(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  // Deterministic failure: rethrow the lowest task index's exception, not
  // whichever thread happened to fail first.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace wb::runner
