// Work-stealing thread pool for embarrassingly-parallel sweep tasks.
//
// Each worker owns a deque: it pops its own work from the back (LIFO, warm
// caches) and steals from the front of a victim's deque when empty (FIFO,
// takes the oldest — least likely to be in the victim's cache). Tasks here
// are coarse (one full experiment trial, ~milliseconds to seconds), so the
// queues are mutex-protected — contention is negligible at this
// granularity and the locking is trivially clean under TSan.
//
// The pool executes side effects only; result placement and ordering are
// the caller's job (SweepRunner slots results by task index, which is how
// sweep output stays deterministic even though completion order is not).
//
// This is the only place in the codebase allowed to create threads:
// tools/wb_lint.py forbids raw std::thread / std::async outside
// src/runner/ so parallelism stays behind the deterministic sweep API.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace wb::runner {

/// Number of workers to use when the caller does not say: the hardware
/// concurrency, with a floor of 1 (hardware_concurrency() may return 0).
unsigned default_threads() noexcept;

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; pass default_threads() to match
  /// the machine).
  explicit ThreadPool(unsigned num_threads);

  /// Drains remaining work, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueue `fn` for execution on some worker. `fn` must not throw (wrap
  /// and capture exceptions at the call site — SweepRunner stores one
  /// std::exception_ptr per task). Safe to call from any thread.
  void submit(std::function<void()> fn);

  /// Block until every task submitted so far has finished running.
  void wait_idle();

 private:
  struct WorkerQueue {
    util::Mutex mu;
    std::deque<std::function<void()>> tasks WB_GUARDED_BY(mu);
  };

  void worker_loop(std::size_t self);
  std::function<void()> grab_task(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // Sleep/wake machinery: `epoch_` counts submissions so a worker that saw
  // empty queues can tell "nothing new arrived" from "I lost a race";
  // `pending_` counts submitted-but-unfinished tasks for wait_idle().
  util::Mutex mu_;
  std::condition_variable_any work_cv_;  // _any: waits on util::Mutex
  std::condition_variable_any idle_cv_;
  std::uint64_t epoch_ WB_GUARDED_BY(mu_) = 0;
  std::size_t pending_ WB_GUARDED_BY(mu_) = 0;
  bool stop_ WB_GUARDED_BY(mu_) = false;
  /// Round-robin submission target.
  std::size_t next_queue_ WB_GUARDED_BY(mu_) = 0;
};

}  // namespace wb::runner
