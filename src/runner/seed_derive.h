// Splittable per-task seed derivation for parallel sweeps.
//
// A sweep expands into independent tasks; each task must own its entire
// random universe so that (a) no RNG state is shared across threads and
// (b) the draws of task i are a pure function of (base_seed, i) — never
// of which thread ran it or in what order. Tasks then feed the derived
// seed to sim::RngStream exactly like today's serial drivers do.
#pragma once

#include <cstdint>

namespace wb::runner {

/// SplitMix64 finalizer (same mixer family as sim::RngStream's core):
/// a bijective avalanche so consecutive inputs give uncorrelated outputs.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-task seed: hash(base_seed, task_index) with two mixing rounds so
/// neighbouring task indices (0, 1, 2, ...) land in unrelated regions of
/// seed space. Derivation is asymmetric in its arguments —
/// derive_seed(a, b) != derive_seed(b, a) — and stable across platforms,
/// thread counts, and scheduling, which is what makes merged sweep output
/// bit-identical to a serial run.
constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                    std::uint64_t task_index) noexcept {
  return mix64(mix64(base_seed) ^ (task_index * 0xff51afd7ed558ccdull));
}

}  // namespace wb::runner
