#include "runner/sweep.h"

#include "runner/indexed_for.h"
#include "runner/thread_pool.h"

namespace wb::runner {

SweepRunner::SweepRunner(SweepConfig cfg) : cfg_(cfg) {
  threads_ = cfg_.threads == 0 ? default_threads() : cfg_.threads;
}

void SweepRunner::run_indexed(
    std::size_t num_tasks, const std::function<void(std::size_t)>& task) {
  for_each_index(threads_, num_tasks, task);
}

}  // namespace wb::runner
