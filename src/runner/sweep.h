// SweepRunner: deterministic parallel execution of a declarative task grid.
//
// A sweep is N independent tasks (one experiment trial each). The runner
//   * derives each task's RNG seed with the splittable scheme in
//     seed_derive.h (`seed = derive_seed(base_seed, task_index)`) so no
//     task shares random state with another,
//   * executes tasks on a work-stealing ThreadPool (or inline on the
//     calling thread when threads == 1, preserving serial behaviour
//     exactly — no pool, no extra threads),
//   * slots every result by task index and merges per-task
//     obs::MetricsRegistry snapshots in ascending index order,
// so the combined output is bit-identical to the serial run and
// independent of thread count and scheduling (asserted by
// tests/test_runner_sweep.cpp at --threads 1/2/8).
//
// Tasks see the obs globals *thread-locally*: when metrics collection is
// on, each task runs under its own ScopedMetrics on its worker thread and
// the registries merge afterwards; a registry or tracer installed by the
// caller's thread is never written concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "runner/merge.h"
#include "runner/seed_derive.h"

namespace wb::runner {

struct SweepConfig {
  /// Worker count; 0 means default_threads() (the hardware concurrency).
  /// 1 runs every task inline on the calling thread in index order.
  unsigned threads = 0;

  /// Base of the splittable per-task seed derivation.
  std::uint64_t base_seed = 0;

  /// When true, each task runs under a fresh thread-locally installed
  /// MetricsRegistry and SweepResult::metrics holds the in-order merge.
  bool collect_metrics = false;

  /// When true, each task runs under a fresh thread-locally installed
  /// ForensicsSink and SweepResult::forensics holds the in-order merge.
  /// Any flight recorder installed on the calling thread is suppressed
  /// for the task's duration (even at threads == 1): recorder events
  /// interleave by completion order, so letting tasks share the caller's
  /// ring would make its contents depend on scheduling.
  bool collect_forensics = false;

  /// Per-(stage, reason) exemplar capacity of each task's sink and of the
  /// merged sink (the merge re-applies the cap in task-index order).
  std::size_t forensics_exemplar_cap = obs::ForensicsSink::kDefaultExemplarCap;
};

/// What a task callable receives. The params a task actually sweeps over
/// live in the caller's expanded grid, indexed by `task_index`.
struct TaskContext {
  std::size_t task_index = 0;
  std::uint64_t seed = 0;  ///< derive_seed(base_seed, task_index)
};

template <typename R>
struct SweepResult {
  std::vector<R> results;  ///< results[i] is task i's return value
  /// In-order merge of the per-task registries; null unless
  /// SweepConfig::collect_metrics was set.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  /// In-order merge of the per-task forensics sinks; null unless
  /// SweepConfig::collect_forensics was set.
  std::unique_ptr<obs::ForensicsSink> forensics;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig cfg = {});

  /// The resolved worker count (never 0).
  unsigned threads() const noexcept { return threads_; }

  /// Runs fn(ctx) for task indices [0, num_tasks). `fn` must be
  /// const-callable from multiple threads at once (capture the expanded
  /// grid by const reference) and return a default-constructible value —
  /// results are slotted into a pre-sized vector by index. A throwing
  /// task aborts the sweep: the lowest-index exception is rethrown after
  /// all in-flight tasks drain, so failures are as deterministic as
  /// successes.
  template <typename Fn>
  auto run(std::size_t num_tasks, Fn&& fn)
      -> SweepResult<std::decay_t<std::invoke_result_t<Fn&, const TaskContext&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, const TaskContext&>>;
    static_assert(!std::is_void_v<R>,
                  "sweep tasks must return a value (their measurement)");
    static_assert(!std::is_same_v<R, bool>,
                  "sweep tasks must not return bool: std::vector<bool> "
                  "bit-packs, so writing results[i] from parallel tasks "
                  "would race on shared bytes — return a struct or int");
    SweepResult<R> out;
    out.results.resize(num_tasks);
    std::vector<std::unique_ptr<obs::MetricsRegistry>> regs(
        cfg_.collect_metrics ? num_tasks : 0);
    std::vector<std::unique_ptr<obs::ForensicsSink>> sinks(
        cfg_.collect_forensics ? num_tasks : 0);

    run_indexed(num_tasks, [&](std::size_t i) {
      const TaskContext ctx{i, derive_seed(cfg_.base_seed, i)};
      std::optional<obs::ScopedMetrics> metrics_guard;
      if (cfg_.collect_metrics) {
        regs[i] = std::make_unique<obs::MetricsRegistry>();
        metrics_guard.emplace(*regs[i]);
      }
      std::optional<obs::ScopedForensics> forensics_guard;
      std::optional<obs::ScopedFlightRecorder> recorder_guard;
      if (cfg_.collect_forensics) {
        sinks[i] =
            std::make_unique<obs::ForensicsSink>(cfg_.forensics_exemplar_cap);
        forensics_guard.emplace(*sinks[i]);
        recorder_guard.emplace(nullptr);  // see SweepConfig::collect_forensics
      }
      out.results[i] = fn(ctx);
    });

    if (cfg_.collect_metrics) {
      out.metrics = std::make_unique<obs::MetricsRegistry>();
      merge_metrics_in_order(*out.metrics, regs);
    }
    if (cfg_.collect_forensics) {
      out.forensics =
          std::make_unique<obs::ForensicsSink>(cfg_.forensics_exemplar_cap);
      merge_forensics_in_order(*out.forensics, sinks);
    }
    return out;
  }

 private:
  /// Non-template engine: executes task(0..num_tasks) on the pool (or
  /// inline when threads() == 1), waits for completion, and rethrows the
  /// lowest-index captured exception, if any.
  void run_indexed(std::size_t num_tasks,
                   const std::function<void(std::size_t)>& task);

  SweepConfig cfg_;
  unsigned threads_ = 1;
};

}  // namespace wb::runner
