#include "runner/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace wb::runner {

unsigned default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  WB_REQUIRE(num_threads >= 1, "a thread pool needs at least one worker");
  queues_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    const util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  WB_REQUIRE(static_cast<bool>(fn), "cannot submit an empty task");
  {
    const util::MutexLock lock(mu_);
    WB_REQUIRE(!stop_, "cannot submit to a stopping pool");
    const std::size_t target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
    // The push must not happen after the epoch bump becomes visible: a
    // worker that reads the new epoch must find the task queued, and one
    // that read the old epoch must see epoch_ != seen_epoch when it goes
    // to sleep after a failed scan. Holding mu_ across the push makes the
    // pair atomic w.r.t. the worker's read-scan-sleep sequence (workers
    // never acquire mu_ while holding a queue mutex, so the mu_ -> q.mu
    // order here cannot deadlock).
    {
      const util::MutexLock qlock(queues_[target]->mu);
      queues_[target]->tasks.push_back(std::move(fn));
    }
    ++epoch_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  // Open-coded wait loop: the thread-safety analysis cannot see into a
  // predicate lambda, but it can see that mu_ is held around each
  // pending_ read here (condition_variable_any unlocks/relocks mu_
  // itself inside wait()).
  const util::MutexLock lock(mu_);
  while (pending_ != 0) idle_cv_.wait(mu_);
}

std::function<void()> ThreadPool::grab_task(std::size_t self) {
  // Own queue first, newest task (back) for cache warmth...
  {
    WorkerQueue& q = *queues_[self];
    const util::MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      auto fn = std::move(q.tasks.back());
      q.tasks.pop_back();
      return fn;
    }
  }
  // ...then steal the oldest task (front) from the next busy victim.
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& q = *queues_[(self + off) % queues_.size()];
    const util::MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      auto fn = std::move(q.tasks.front());
      q.tasks.pop_front();
      return fn;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::uint64_t seen_epoch = 0;
    {
      const util::MutexLock lock(mu_);
      seen_epoch = epoch_;
    }
    if (auto fn = grab_task(self)) {
      fn();
      bool now_idle = false;
      {
        const util::MutexLock lock(mu_);
        now_idle = (--pending_ == 0);
      }
      if (now_idle) idle_cv_.notify_all();
      continue;
    }
    // Saw every queue empty at `seen_epoch`; sleep until either stop or a
    // submission bumps the epoch (re-scan then — the new task may have
    // been grabbed by someone else, which is fine, we just loop).
    const util::MutexLock lock(mu_);
    while (!stop_ && epoch_ == seen_epoch) work_cv_.wait(mu_);
    if (stop_) return;
  }
}

}  // namespace wb::runner
