// Deterministic, order-aware merging of per-task sweep outputs.
//
// Parallel tasks complete in a scheduling-dependent order; everything the
// caller observes must not. The rule everywhere in this module is: merge
// in ascending task-index order, which makes the combined output equal to
// what a serial run with one shared registry/report would have produced
// (counters and histograms are commutative sums; peak gauges — ones
// updated via Gauge::max_of — combine with max; plain gauges are
// last-write-wins, and "last" in task-index order is exactly the serial
// "last").
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace wb::runner {

/// Merges `parts[0], parts[1], ...` into `dest` in that order (parts[i]
/// holds task i's registry; null entries are skipped — a task that was
/// run without metrics collection). Returns the number of registries
/// merged. See obs::MetricsRegistry::merge_from for per-instrument
/// semantics.
std::size_t merge_metrics_in_order(
    obs::MetricsRegistry& dest,
    const std::vector<std::unique_ptr<obs::MetricsRegistry>>& parts);

/// Appends every row of `src` to `dest`, preserving row order and field
/// order (used by sweep drivers that build one report per task and emit a
/// single grid-wide report).
void append_report_rows(obs::RunReport& dest, const obs::RunReport& src);

/// Merges per-task forensics sinks into `dest` in task-index order
/// (counters are commutative sums; exemplars append in task order and
/// re-apply dest's per-cell cap, so the survivors are the lowest-index
/// tasks' — exactly the serial outcome). Null entries are skipped.
/// Returns the number of sinks merged.
std::size_t merge_forensics_in_order(
    obs::ForensicsSink& dest,
    const std::vector<std::unique_ptr<obs::ForensicsSink>>& parts);

}  // namespace wb::runner
