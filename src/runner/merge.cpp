#include "runner/merge.h"

#include <variant>

namespace wb::runner {

std::size_t merge_metrics_in_order(
    obs::MetricsRegistry& dest,
    const std::vector<std::unique_ptr<obs::MetricsRegistry>>& parts) {
  std::size_t merged = 0;
  for (const auto& part : parts) {
    if (part == nullptr) continue;
    dest.merge_from(*part);
    ++merged;
  }
  return merged;
}

std::size_t merge_forensics_in_order(
    obs::ForensicsSink& dest,
    const std::vector<std::unique_ptr<obs::ForensicsSink>>& parts) {
  std::size_t merged = 0;
  for (const auto& part : parts) {
    if (part == nullptr) continue;
    dest.merge_from(*part);
    ++merged;
  }
  return merged;
}

void append_report_rows(obs::RunReport& dest, const obs::RunReport& src) {
  for (const auto& row : src.rows()) {
    auto& out = dest.add_row(row.name());
    for (const auto& [key, value] : row.fields()) {
      std::visit([&out, &key](const auto& v) { out.set(key, v); }, value);
    }
  }
}

}  // namespace wb::runner
