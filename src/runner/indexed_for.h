// Deterministic indexed parallel-for: the execution engine underneath
// SweepRunner, exposed so other fan-out layers (wb::serve's per-session
// dispatch) share one scheduling policy instead of growing their own
// threads.
//
// Contract (identical to SweepRunner::run_indexed, which delegates here):
//   * workers <= 1 or num_tasks <= 1 runs every task inline on the
//     calling thread in ascending index order — no pool, no extra
//     threads, serial behaviour preserved exactly;
//   * otherwise tasks run on a work-stealing ThreadPool; a throwing task
//     does not abort its siblings — after all in-flight tasks drain, the
//     *lowest-index* exception is rethrown, so failures are as
//     deterministic as successes.
#pragma once

#include <cstddef>
#include <functional>

namespace wb::runner {

/// Runs task(i) for every i in [0, num_tasks). `task` must be safe to
/// invoke concurrently for distinct indices (shared state only via its
/// own synchronisation); per-index state needs none.
void for_each_index(unsigned workers, std::size_t num_tasks,
                    const std::function<void(std::size_t)>& task);

}  // namespace wb::runner
