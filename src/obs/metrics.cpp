#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wb::obs {

namespace {
// Thread-local: each sweep worker installs (and observes) its own
// registry; see the metrics() contract in the header.
thread_local MetricsRegistry* t_metrics = nullptr;
}  // namespace

MetricsRegistry* metrics() noexcept { return t_metrics; }

ScopedMetrics::ScopedMetrics(MetricsRegistry& r) : prev_(t_metrics) {
  t_metrics = &r;
}

ScopedMetrics::ScopedMetrics(MetricsRegistry* r) : prev_(t_metrics) {
  t_metrics = r;
}

ScopedMetrics::~ScopedMetrics() { t_metrics = prev_; }

void Gauge::max_of(double x) noexcept {
  peak_.store(true, std::memory_order_relaxed);
  double cur = v_.load(std::memory_order_relaxed);
  while (x > cur &&
         !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

LogHistogram::LogHistogram() : buckets_(kNumBuckets) {}

int LogHistogram::bucket_index(double v) noexcept {
  if (!(v > kMinValue)) return 0;  // underflow (also zero, negative, NaN)
  const double octaves = std::log2(v / kMinValue);
  const int i = 1 + static_cast<int>(octaves * kBucketsPerOctave);
  return std::min(i, kNumBuckets - 1);  // top bucket = overflow
}

double LogHistogram::bucket_midpoint(int i) noexcept {
  if (i <= 0) return kMinValue;
  // Bucket i spans [kMin * 2^((i-1)/k), kMin * 2^(i/k)); geometric middle.
  const double lo = (i - 1) / static_cast<double>(kBucketsPerOctave);
  const double hi = i / static_cast<double>(kBucketsPerOctave);
  return kMinValue * std::exp2(0.5 * (lo + hi));
}

void LogHistogram::record(double v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  if (prev == 0) {
    // First sample seeds min/max; racing recorders then CAS below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void LogHistogram::merge_from(const LogHistogram& other) noexcept {
  if (&other == this) return;
  const std::uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n == 0) return;
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    const std::uint64_t b = other.buckets_[i].load(std::memory_order_relaxed);
    if (b != 0) buckets_[i].fetch_add(b, std::memory_order_relaxed);
  }
  const std::uint64_t prev = count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const double omin = other.min_.load(std::memory_order_relaxed);
  const double omax = other.max_.load(std::memory_order_relaxed);
  if (prev == 0) {
    min_.store(omin, std::memory_order_relaxed);
    max_.store(omax, std::memory_order_relaxed);
    return;
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (omin < cur &&
         !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

double LogHistogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double LogHistogram::min() const noexcept {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double LogHistogram::max() const noexcept {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double LogHistogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based (nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(n)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen >= target) {
      // The underflow bucket collapses everything below kMinValue
      // (including non-positive values); its midpoint is meaningless,
      // so report the exact observed minimum instead.
      if (i == 0) return min();
      return std::clamp(bucket_midpoint(i), min(), max());
    }
  }
  return max();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  WB_REQUIRE(!name.empty(), "metric name must be non-empty");
  const util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  WB_REQUIRE(!name.empty(), "metric name must be non-empty");
  const util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name) {
  WB_REQUIRE(!name.empty(), "metric name must be non-empty");
  const util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LogHistogram>())
             .first;
  }
  return *it->second;
}

// Analysis opt-out for the locking wrapper only: std::scoped_lock carries
// no capability annotations and its two-mutex deadlock-avoidance protocol
// cannot be expressed as WB_ACQUIRE scopes. The merge body itself
// (merge_locked) is fully analyzed under WB_REQUIRES; TSan covers the
// wrapper.
void MetricsRegistry::merge_from(const MetricsRegistry& other)
    WB_NO_THREAD_SAFETY_ANALYSIS {
  if (&other == this) return;
  // scoped_lock's deadlock-avoidance orders the two mutexes, so two
  // threads cross-merging cannot wedge.
  const std::scoped_lock lock(mu_, other.mu_);
  merge_locked(other);
}

// Instruments are found-or-created inline (counter()/gauge()/histogram()
// would re-lock mu_).
void MetricsRegistry::merge_locked(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    it->second->add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    }
    // Peak gauges (max_of) merge with max so the result matches one
    // shared gauge; plain gauges are last-merge-wins.
    if (g->is_peak()) {
      it->second->max_of(g->value());
    } else {
      it->second->set(g->value());
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, std::make_unique<LogHistogram>()).first;
    }
    it->second->merge_from(*h);
  }
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const util::MutexLock lock(mu_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramStats s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->percentile(50.0);
    s.p95 = h->percentile(95.0);
    s.p99 = h->percentile(99.0);
    out.histograms.emplace_back(name, s);
  }
  return out;
}

}  // namespace wb::obs
