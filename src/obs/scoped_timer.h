// Wall-clock scoped timer for decoder hot paths: measures the enclosing
// scope with steady_clock and records microseconds into a registry
// histogram. When observability is off the constructor takes one global
// load and branch and never touches the clock.
#pragma once

#include <chrono>
#include <string_view>

#include "obs/metrics.h"

namespace wb::obs {

class ScopedTimer {
 public:
  /// Records into `metrics()->histogram(name)`; inert when metrics are off.
  explicit ScopedTimer(std::string_view name) {
    if (MetricsRegistry* m = metrics()) {
      hist_ = &m->histogram(name);
      start_ = std::chrono::steady_clock::now();
    }
  }

  /// Records into an already-resolved histogram (hoisted handle); pass
  /// nullptr to disable.
  explicit ScopedTimer(LogHistogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (hist_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      hist_->record(static_cast<double>(ns) * 1e-3);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LogHistogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace wb::obs
