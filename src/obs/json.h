// Minimal JSON emission helpers shared by the tracer and the run-report
// sink. Emission only — nothing in this repo needs to *parse* JSON.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace wb::obs {

/// JSON string-literal body for `s` (quotes not included).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A double as a JSON value. NaN/Inf have no JSON representation; they
/// become null, which any consumer treats as "not measured".
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace wb::obs
