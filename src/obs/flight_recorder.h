// Flight recorder: a fixed-capacity ring of structured log events on the
// simulation's virtual clock — the "last N things the pipeline did" that a
// postmortem wants when a run dies.
//
// Events carry a virtual-time timestamp, severity, module tag, message,
// and up to four numeric key=value fields. All storage is preallocated in
// the constructor and log() only writes into it (truncating copies into
// fixed-width char arrays), so steady-state recording allocates nothing —
// the bench_obs_overhead gate pins this.
//
// Like the tracer, the recorder has a per-thread install point with an
// offset so sub-simulations running their own virtual clocks from 0 land
// on the outer protocol timeline (ScopedTraceOffset shifts both).
//
// ScopedContractDump hooks the recorder into WB_REQUIRE/WB_ENSURE: when a
// contract fails anywhere on any thread, the failing thread's recorder
// ring is flushed as JSONL to a fixed path before the violation is
// rethrown or aborts — the black box survives the crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/thread_annotations.h"
#include "util/units.h"

namespace wb::obs {

/// Event severity, ordered least to most severe.
enum class Severity : std::uint8_t { kDebug, kInfo, kWarn, kError };
inline constexpr std::size_t kNumSeverities = 4;

/// Lowercase severity token, e.g. "warn" (stable export token).
const char* to_string(Severity sev) noexcept;

/// Fixed-capacity ring of structured events; oldest events are
/// overwritten once the ring wraps. Thread-safe (one mutex around the
/// ring) though the intended shape is one recorder per thread.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;
  static constexpr std::size_t kMaxFields = 4;
  static constexpr std::size_t kKeyBytes = 24;     ///< incl. NUL
  static constexpr std::size_t kModuleBytes = 24;  ///< incl. NUL
  static constexpr std::size_t kMessageBytes = 96; ///< incl. NUL

  /// One numeric annotation; key is truncated to kKeyBytes-1.
  struct Field {
    char key[kKeyBytes] = {};
    double value = 0.0;
  };

  struct Event {
    std::uint64_t seq = 0;  ///< monotonically increasing, never reused
    TimeUs ts{0};           ///< virtual time (recorder offset applied)
    Severity severity = Severity::kInfo;
    char module[kModuleBytes] = {};
    char message[kMessageBytes] = {};
    Field fields[kMaxFields];
    std::uint32_t num_fields = 0;
  };

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one event. Zero-allocation: module/message/keys are truncated
  /// into the ring slot; fields beyond kMaxFields are dropped.
  WB_REALTIME void log(TimeUs ts_us, Severity sev, std::string_view module,
           std::string_view message,
           std::initializer_list<std::pair<std::string_view, double>>
               fields = {}) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Events currently held (<= capacity()).
  std::size_t size() const;
  /// Total events ever logged; size() < total_logged() means the ring
  /// wrapped and the oldest (total_logged - size) events were overwritten.
  std::uint64_t total_logged() const;
  void clear();

  /// Offset added to every logged timestamp (see ScopedTraceOffset).
  TimeUs offset() const;
  void set_offset(TimeUs offset_us);

  /// Oldest-first copy of the ring (allocates; export/inspection only).
  std::vector<Event> events() const;

  /// One JSON object per line, oldest first:
  /// {"type":"event","seq":N,"ts_us":T,"severity":"warn","module":"m",
  ///  "message":"...","fields":{"k":v,...}}
  std::string to_jsonl() const;
  /// Returns false if the file cannot be written. noexcept so the
  /// contract-violation hook can call it while unwinding.
  bool write_jsonl(const std::string& path) const noexcept;

 private:
  mutable util::Mutex mu_;
  std::vector<Event> ring_ WB_GUARDED_BY(mu_);  ///< preallocated, capacity_ slots
  std::size_t capacity_;
  std::uint64_t next_seq_ WB_GUARDED_BY(mu_) = 0;
  TimeUs offset_ WB_GUARDED_BY(mu_){0};
};

/// The recorder installed on *this thread*; nullptr when recording is off.
FlightRecorder* recorder() noexcept;

/// RAII install/restore of this thread's recorder. Accepts nullptr to
/// *suppress* an outer recorder for a scope — sweep tasks use this so an
/// inline (threads=1) run records exactly what a worker thread would.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder* rec);
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* prev_;
};

/// While alive, any contract violation (WB_REQUIRE/WB_ENSURE/WB_INVARIANT)
/// dumps the failing thread's recorder ring as JSONL to `path` before the
/// policy (throw/abort) runs. Installs a wb::ContractFailureHook; nesting
/// restores the previous hook and path on destruction.
class ScopedContractDump {
 public:
  explicit ScopedContractDump(const std::string& path);
  ~ScopedContractDump();
  ScopedContractDump(const ScopedContractDump&) = delete;
  ScopedContractDump& operator=(const ScopedContractDump&) = delete;

 private:
  ContractFailureHook prev_hook_;
  std::string prev_path_;
};

}  // namespace wb::obs
