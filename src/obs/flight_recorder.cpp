#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/json.h"

namespace wb::obs {

namespace {

// Thread-local, like obs::metrics(): sweep workers must not feed a
// recorder the caller's thread installed.
thread_local FlightRecorder* t_recorder = nullptr;

// Contract-dump target. A fixed buffer (not std::string) so installing
// the hook cannot allocate during unwinding and the path survives
// whatever state the process is in when a contract fails.
char g_dump_path[512] = {};

void dump_on_contract_failure(const char* message) noexcept {
  FlightRecorder* rec = t_recorder;
  if (rec == nullptr || g_dump_path[0] == '\0') return;
  // Append the violation itself so the dump is self-describing, then
  // flush the ring. Timestamp 0 + the recorder's current offset: the
  // violation interrupts whatever leg was running.
  rec->log(TimeUs{0}, Severity::kError, "contract", message);
  rec->write_jsonl(g_dump_path);
}

void copy_trunc(char* dst, std::size_t cap, std::string_view src) noexcept {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder* recorder() noexcept { return t_recorder; }

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder* rec)
    : prev_(t_recorder) {
  t_recorder = rec;
}

ScopedFlightRecorder::~ScopedFlightRecorder() { t_recorder = prev_; }

const char* to_string(Severity sev) noexcept {
  switch (sev) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  const util::MutexLock lock(mu_);
  ring_.resize(capacity_);
}

void FlightRecorder::log(
    TimeUs ts_us, Severity sev, std::string_view module,
    std::string_view message,
    std::initializer_list<std::pair<std::string_view, double>> fields) noexcept {
  const util::MutexLock lock(mu_);  // wb-analyze: allow(realtime-blocking): recorders are installed per worker thread (see recorder() contract), so the mutex is uncontended and the critical section is a bounded fixed-width copy — no waits, no I/O
  Event& e = ring_[next_seq_ % capacity_];
  e.seq = next_seq_++;
  e.ts = ts_us + offset_;
  e.severity = sev;
  copy_trunc(e.module, kModuleBytes, module);
  copy_trunc(e.message, kMessageBytes, message);
  e.num_fields = 0;
  for (const auto& [key, value] : fields) {
    if (e.num_fields >= kMaxFields) break;
    Field& f = e.fields[e.num_fields++];
    copy_trunc(f.key, kKeyBytes, key);
    f.value = value;
  }
}

std::size_t FlightRecorder::size() const {
  const util::MutexLock lock(mu_);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(next_seq_, capacity_));
}

std::uint64_t FlightRecorder::total_logged() const {
  const util::MutexLock lock(mu_);
  return next_seq_;
}

void FlightRecorder::clear() {
  const util::MutexLock lock(mu_);
  next_seq_ = 0;
}

TimeUs FlightRecorder::offset() const {
  const util::MutexLock lock(mu_);
  return offset_;
}

void FlightRecorder::set_offset(TimeUs offset_us) {
  const util::MutexLock lock(mu_);
  offset_ = offset_us;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  const util::MutexLock lock(mu_);
  std::vector<Event> out;
  const std::uint64_t held = std::min<std::uint64_t>(next_seq_, capacity_);
  out.reserve(static_cast<std::size_t>(held));
  const std::uint64_t first = next_seq_ - held;
  for (std::uint64_t s = first; s < next_seq_; ++s) {
    out.push_back(ring_[s % capacity_]);
  }
  return out;
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for (const Event& e : events()) {
    out += "{\"type\":\"event\",\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"ts_us\":";
    out += std::to_string(e.ts.ticks());
    out += ",\"severity\":\"";
    out += to_string(e.severity);
    out += "\",\"module\":\"";
    out += json_escape(e.module);
    out += "\",\"message\":\"";
    out += json_escape(e.message);
    out += "\",\"fields\":{";
    for (std::uint32_t i = 0; i < e.num_fields; ++i) {
      if (i != 0) out += ',';
      out += '"';
      out += json_escape(e.fields[i].key);
      out += "\":";
      out += json_number(e.fields[i].value);
    }
    out += "}}\n";
  }
  return out;
}

bool FlightRecorder::write_jsonl(const std::string& path) const noexcept {
  try {
    const std::string body = to_jsonl();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size();
    return std::fclose(f) == 0 && ok;
  } catch (...) {
    return false;
  }
}

ScopedContractDump::ScopedContractDump(const std::string& path)
    : prev_hook_(contract_failure_hook()), prev_path_(g_dump_path) {
  copy_trunc(g_dump_path, sizeof(g_dump_path), path);
  set_contract_failure_hook(&dump_on_contract_failure);
}

ScopedContractDump::~ScopedContractDump() {
  copy_trunc(g_dump_path, sizeof(g_dump_path), prev_path_);
  set_contract_failure_hook(prev_hook_);
}

}  // namespace wb::obs
