// RunReport: machine-readable result sink for experiments and benches.
//
// A report carries three things:
//   * meta       — free-form key/value context (figure id, seed, mode);
//                  numbers, strings, and booleans keep their JSON types
//                  (`"quick": true`, not `1.0`);
//   * rows       — the tabular results a bench would otherwise printf
//                  (one named row, ordered fields, numeric or string);
//   * metrics    — an optional MetricsRegistry snapshot (counters, gauges,
//                  histogram percentiles) attached at the end of a run.
//
// JSON is the primary format (one self-describing object); rows can also
// be exported as CSV for spreadsheet-style consumers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "obs/metrics.h"

namespace wb::obs {

class RunReport {
 public:
  using Value = std::variant<double, std::string, bool>;

  /// One named result row with ordered fields.
  ///
  /// The bool overloads are exact-match templates so that a `const char*`
  /// argument still selects the string overload (a plain `set(..., bool)`
  /// would win that resolution via pointer->bool conversion) and integer
  /// arguments keep converting to double rather than becoming ambiguous.
  class Row {
   public:
    explicit Row(std::string name) : name_(std::move(name)) {}
    Row& set(std::string_view key, double value);
    Row& set(std::string_view key, std::string_view value);
    template <typename T,
              std::enable_if_t<std::is_same_v<T, bool>, int> = 0>
    Row& set(std::string_view key, T value) {
      return set_bool(key, value);
    }

    const std::string& name() const { return name_; }
    const std::vector<std::pair<std::string, Value>>& fields() const {
      return fields_;
    }

   private:
    Row& set_bool(std::string_view key, bool value);

    std::string name_;
    std::vector<std::pair<std::string, Value>> fields_;
  };

  void set_meta(std::string_view key, std::string_view value);
  void set_meta(std::string_view key, double value);
  template <typename T, std::enable_if_t<std::is_same_v<T, bool>, int> = 0>
  void set_meta(std::string_view key, T value) {
    set_meta_bool(key, value);
  }

  /// Adds a row; the reference stays valid until the next add_row.
  Row& add_row(std::string_view name);

  /// Snapshots `reg` into the report (replacing any earlier snapshot).
  void attach_metrics(const MetricsRegistry& reg);

  const std::vector<Row>& rows() const { return rows_; }
  const MetricsRegistry::Snapshot& metrics_snapshot() const {
    return metrics_;
  }

  std::string to_json() const;

  /// Rows as CSV: header is the union of field keys in first-seen order,
  /// first column `row`. Strings are quoted; missing fields are empty.
  std::string rows_csv() const;

  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;

 private:
  void set_meta_bool(std::string_view key, bool value);

  std::vector<std::pair<std::string, Value>> meta_;
  std::vector<Row> rows_;
  MetricsRegistry::Snapshot metrics_;
};

}  // namespace wb::obs
