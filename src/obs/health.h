// HealthMonitor: declarative SLO rules evaluated deterministically on the
// virtual clock against the installed metrics registry.
//
// A rule is one line of grammar (the CLI's repeatable --slo flag and
// check.sh both speak it):
//
//   [name=]metric[/denominator][:stat] (<=|>=) bound
//
//   * `metric` is an instrument name. With `/denominator`, the rule value
//     is the ratio of two counter/gauge values (0 when the denominator is
//     0) — how a BER ceiling is written:
//       ber=core.system.uplink_bit_errors_total/core.system.uplink_bits_delivered_total<=0.01
//   * `:stat` selects a histogram statistic (`p50`, `p95`, `p99`, `mean`,
//     `count`); omitted, the rule reads a counter (then gauge) value —
//     p99 decode latency: `reader.uplink.decode_us:p99<=5000`, queue
//     watermark: `core.stream.queue_depth_peak_count<=64`, harvest floor:
//     `tag.harvester.energy_uj>=1.0`.
//   * A missing instrument evaluates as value 0 with `has_value=false`;
//     `<=` rules treat it as satisfied (nothing measured, nothing over),
//     `>=` rules as breached (a floor with no supply is a breach).
//
// evaluate() is stateful: breach/recovery *transitions* emit kError/kInfo
// events into the flight recorder (when one is supplied), so a sweep's
// recorder shows when an SLO went unhealthy on the protocol timeline, not
// one alert per evaluation tick. Everything runs on virtual time —
// identical runs produce identical alert streams.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace wb::obs {

class FlightRecorder;
class MetricsRegistry;

/// One parsed SLO rule.
struct SloRule {
  /// Which statistic of the instrument the rule reads.
  enum class Stat { kValue, kP50, kP95, kP99, kMean, kCount };
  enum class Op { kLe, kGe };

  std::string name;         ///< label for alerts; defaults to the spec text
  std::string metric;       ///< instrument name (numerator for ratios)
  std::string denominator;  ///< empty unless the rule is a ratio
  Stat stat = Stat::kValue;
  Op op = Op::kLe;
  double bound = 0.0;
};

/// Parse one rule from the grammar above; nullopt on malformed input.
std::optional<SloRule> parse_slo_rule(std::string_view spec);

/// Canonical one-line rendering (parseable by parse_slo_rule).
std::string to_string(const SloRule& rule);

/// Outcome of one rule at one evaluation.
struct SloStatus {
  std::string name;       ///< rule name
  double value = 0.0;     ///< what the rule measured (0 when absent)
  bool has_value = false; ///< the instrument existed in the registry
  bool breached = false;
};

/// Holds rules plus their breach state across evaluations.
class HealthMonitor {
 public:
  void add_rule(SloRule rule);
  /// Parse-and-add; false (and no rule added) on malformed spec.
  bool add_rule(std::string_view spec);
  std::size_t num_rules() const noexcept { return rules_.size(); }

  /// Evaluate every rule against a snapshot of `m` at virtual time `now`.
  /// Transitions (healthy->breached, breached->healthy) log kError/kInfo
  /// events into `rec` when non-null. Returns statuses in rule order.
  std::vector<SloStatus> evaluate(const MetricsRegistry& m, TimeUs now,
                                  FlightRecorder* rec = nullptr);

  /// Rules currently in breach (after the last evaluate()).
  std::size_t breached_count() const noexcept;

 private:
  struct State {
    SloRule rule;
    bool breached = false;
  };
  std::vector<State> rules_;
};

}  // namespace wb::obs
