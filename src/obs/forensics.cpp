#include "obs/forensics.h"

#include <cstdio>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace wb::obs {

namespace {
// Thread-local: each sweep worker installs (and observes) its own sink;
// see the forensics() contract in the header.
thread_local ForensicsSink* t_forensics = nullptr;

// Precomputed "forensics.<stage>.<reason>_total" mirrored-metric names,
// one per (stage, reason) cell. Built once at static initialization:
// record_drop is a WB_REALTIME root and must not assemble a std::string
// per drop. 64 bytes comfortably holds the longest combination
// ("forensics.reader_conditioning.drained_incomplete_total" = 55).
struct DropMetricNames {
  char buf[kNumDropStages * kNumDropReasons][64];
  DropMetricNames() noexcept {
    for (std::size_t s = 0; s < kNumDropStages; ++s) {
      for (std::size_t r = 0; r < kNumDropReasons; ++r) {
        std::snprintf(buf[s * kNumDropReasons + r], sizeof(buf[0]),
                      "forensics.%s.%s_total",
                      metric_token(static_cast<DropStage>(s)),
                      to_string(static_cast<DropReason>(r)));
      }
    }
  }
};
const DropMetricNames g_drop_metric_names;
}  // namespace

ForensicsSink* forensics() noexcept { return t_forensics; }

ScopedForensics::ScopedForensics(ForensicsSink& sink) : prev_(t_forensics) {
  t_forensics = &sink;
}

ScopedForensics::~ScopedForensics() { t_forensics = prev_; }

// Both switches are exhaustive with no default so -Wswitch (and the
// wb_analyze drop-taxonomy rule) catch a new enumerator without a token.
const char* to_string(DropStage stage) noexcept {
  switch (stage) {
    case DropStage::kConditioning: return "reader.conditioning";
    case DropStage::kUplinkDecoder: return "reader.uplink";
    case DropStage::kCorrDecoder: return "reader.corr";
    case DropStage::kAckDetector: return "reader.ack";
    case DropStage::kStreamingDecoder: return "reader.streaming";
    case DropStage::kCoreUplink: return "core.uplink";
    case DropStage::kCoreDownlink: return "core.downlink";
    case DropStage::kWifiMac: return "wifi.mac";
    case DropStage::kIngest: return "serve.ingest";
  }
  return "unknown";
}

const char* to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kEmptyTrace: return "empty_trace";
    case DropReason::kNoPreamble: return "no_preamble";
    case DropReason::kLowSnr: return "low_snr";
    case DropReason::kClipped: return "clipped";
    case DropReason::kCollision: return "collision";
    case DropReason::kSlicerAmbiguous: return "slicer_ambiguous";
    case DropReason::kCrcFail: return "crc_fail";
    case DropReason::kDrainedIncomplete: return "drained_incomplete";
    case DropReason::kBackpressure: return "backpressure";
  }
  return "unknown";
}

const char* metric_token(DropStage stage) noexcept {
  switch (stage) {
    case DropStage::kConditioning: return "reader_conditioning";
    case DropStage::kUplinkDecoder: return "reader_uplink";
    case DropStage::kCorrDecoder: return "reader_corr";
    case DropStage::kAckDetector: return "reader_ack";
    case DropStage::kStreamingDecoder: return "reader_streaming";
    case DropStage::kCoreUplink: return "core_uplink";
    case DropStage::kCoreDownlink: return "core_downlink";
    case DropStage::kWifiMac: return "wifi_mac";
    case DropStage::kIngest: return "serve_ingest";
  }
  return "unknown";
}

ForensicsSink::ForensicsSink(std::size_t exemplar_cap)
    : exemplar_cap_(exemplar_cap) {}

void ForensicsSink::record_attempt(DropStage stage) noexcept {
  attempts_[static_cast<std::size_t>(stage)].fetch_add(
      1, std::memory_order_relaxed);
}

void ForensicsSink::record_decode(DropStage stage) noexcept {
  decodes_[static_cast<std::size_t>(stage)].fetch_add(
      1, std::memory_order_relaxed);
}

void ForensicsSink::record_drop(DropStage stage, DropReason reason) {
  drops_[cell(stage, reason)].fetch_add(1, std::memory_order_relaxed);
  // Mirror into the installed metrics registry so RunReports (and
  // wb_report_diff) surface drop reasons as ordinary counters. The name
  // comes from the precomputed static table — no per-drop allocation.
  if (auto* m = metrics()) {
    m->counter(g_drop_metric_names.buf[cell(stage, reason)]).add(1);
  }
}

bool ForensicsSink::wants_exemplar(DropStage stage,
                                   DropReason reason) const noexcept {
  return exemplar_counts_[cell(stage, reason)].load(
             std::memory_order_relaxed) < exemplar_cap_;
}

void ForensicsSink::add_exemplar(DropStage stage, DropReason reason,
                                 std::string csv) {
  const util::MutexLock lock(mu_);
  auto& n = exemplar_counts_[cell(stage, reason)];
  const std::uint32_t ordinal = n.load(std::memory_order_relaxed);
  if (ordinal >= exemplar_cap_) return;
  exemplars_.push_back(Exemplar{stage, reason, ordinal, std::move(csv)});
  n.store(ordinal + 1, std::memory_order_relaxed);
}

std::uint64_t ForensicsSink::attempts(DropStage stage) const noexcept {
  return attempts_[static_cast<std::size_t>(stage)].load(
      std::memory_order_relaxed);
}

std::uint64_t ForensicsSink::decodes(DropStage stage) const noexcept {
  return decodes_[static_cast<std::size_t>(stage)].load(
      std::memory_order_relaxed);
}

std::uint64_t ForensicsSink::drops(DropStage stage,
                                   DropReason reason) const noexcept {
  return drops_[cell(stage, reason)].load(std::memory_order_relaxed);
}

std::uint64_t ForensicsSink::total_drops(DropStage stage) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    total += drops_[cell(stage, static_cast<DropReason>(r))].load(
        std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ForensicsSink::total_drops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& d : drops_) total += d.load(std::memory_order_relaxed);
  return total;
}

std::size_t ForensicsSink::num_exemplars() const {
  const util::MutexLock lock(mu_);
  return exemplars_.size();
}

void ForensicsSink::merge_from(const ForensicsSink& other) {
  if (&other == this) return;
  for (std::size_t s = 0; s < kNumDropStages; ++s) {
    attempts_[s].fetch_add(other.attempts_[s].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    decodes_[s].fetch_add(other.decodes_[s].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  for (std::size_t c = 0; c < drops_.size(); ++c) {
    drops_[c].fetch_add(other.drops_[c].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  // Copy the other sink's exemplars (in its stored order) until this
  // sink's per-(stage, reason) caps fill. std::scoped_lock's
  // deadlock-avoidance orders the two mutexes.
  std::vector<Exemplar> copied;
  {
    const util::MutexLock lock(other.mu_);
    copied = other.exemplars_;
  }
  for (auto& e : copied) add_exemplar(e.stage, e.reason, std::move(e.csv));
}

std::string ForensicsSink::to_jsonl(const FlightRecorder* recorder) const {
  std::string out;
  out += "{\"type\":\"meta\",\"schema\":\"wb.forensics.v1\","
         "\"exemplar_cap\":";
  out += json_number(static_cast<double>(exemplar_cap_));
  out += "}\n";
  for (std::size_t s = 0; s < kNumDropStages; ++s) {
    const auto stage = static_cast<DropStage>(s);
    out += "{\"type\":\"stage\",\"stage\":\"";
    out += to_string(stage);
    out += "\",\"attempts\":";
    out += json_number(static_cast<double>(attempts(stage)));
    out += ",\"decodes\":";
    out += json_number(static_cast<double>(decodes(stage)));
    out += ",\"drops\":";
    out += json_number(static_cast<double>(total_drops(stage)));
    out += "}\n";
  }
  // Aggregate per-reason totals, zeros included: every DropReason
  // enumerator appears in every export — the coverage surface the
  // check.sh obs step diffs against the header.
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    const auto reason = static_cast<DropReason>(r);
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kNumDropStages; ++s) {
      total += drops(static_cast<DropStage>(s), reason);
    }
    out += "{\"type\":\"reason\",\"reason\":\"";
    out += to_string(reason);
    out += "\",\"drops\":";
    out += json_number(static_cast<double>(total));
    out += "}\n";
  }
  for (std::size_t s = 0; s < kNumDropStages; ++s) {
    for (std::size_t r = 0; r < kNumDropReasons; ++r) {
      const auto stage = static_cast<DropStage>(s);
      const auto reason = static_cast<DropReason>(r);
      const std::uint64_t n = drops(stage, reason);
      if (n == 0) continue;
      out += "{\"type\":\"drop\",\"stage\":\"";
      out += to_string(stage);
      out += "\",\"reason\":\"";
      out += to_string(reason);
      out += "\",\"count\":";
      out += json_number(static_cast<double>(n));
      out += "}\n";
    }
  }
  {
    const util::MutexLock lock(mu_);
    for (const auto& e : exemplars_) {
      // "file" is relative to the write_exemplars() prefix, so the JSONL
      // bytes do not depend on where the sidecars land.
      out += "{\"type\":\"exemplar\",\"stage\":\"";
      out += to_string(e.stage);
      out += "\",\"reason\":\"";
      out += to_string(e.reason);
      out += "\",\"ordinal\":";
      out += json_number(static_cast<double>(e.ordinal));
      out += ",\"bytes\":";
      out += json_number(static_cast<double>(e.csv.size()));
      out += ",\"file\":\"";
      out += metric_token(e.stage);
      out += '_';
      out += to_string(e.reason);
      out += '.';
      out += std::to_string(e.ordinal);
      out += ".csv\"}\n";
    }
  }
  if (recorder != nullptr) out += recorder->to_jsonl();
  return out;
}

bool ForensicsSink::write_jsonl(const std::string& path,
                                const FlightRecorder* recorder) const {
  const std::string body = to_jsonl(recorder);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size();
  return std::fclose(f) == 0 && ok;
}

std::size_t ForensicsSink::write_exemplars(const std::string& prefix) const {
  std::vector<Exemplar> copied;
  {
    const util::MutexLock lock(mu_);
    copied = exemplars_;
  }
  std::size_t written = 0;
  for (const auto& e : copied) {
    std::string path = prefix;
    path += '.';
    path += metric_token(e.stage);
    path += '_';
    path += to_string(e.reason);
    path += '.';
    path += std::to_string(e.ordinal);
    path += ".csv";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) continue;
    const std::size_t n = std::fwrite(e.csv.data(), 1, e.csv.size(), f);
    if (std::fclose(f) == 0 && n == e.csv.size()) ++written;
  }
  return written;
}

}  // namespace wb::obs
