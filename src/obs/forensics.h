// Decode forensics: a drop-reason taxonomy threaded through every failure
// exit of the reader pipeline and the core sims, with per-stage counters
// and a bounded exemplar store.
//
// Every stage that tries to decode something records an *attempt*; every
// success records a *decode*; every failure exit records exactly one
// (stage, reason) *drop*. The per-stage invariant
//
//   attempts(stage) == decodes(stage) + total_drops(stage)
//
// holds by construction and is what the forensics check in check.sh pins:
// for a fig10 run, reader.uplink drops sum to (attempted − decoded).
//
// The exemplar store retains the first N raw traces per (stage, reason) as
// pre-serialized capture CSV (the `trace_io --in` format), so a postmortem
// can replay the exact input that died. Serialization happens at the drop
// site — obs stays below wifi in the layering, so the sink only ever sees
// opaque strings.
//
// Like the metrics registry and tracer, the sink is installed per-thread:
// sites guard on `obs::forensics()` returning non-null, the disabled path
// is one thread-local load and branch, and parallel sweeps give every task
// its own sink and merge them in task-index order so output is
// byte-identical at any thread count.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace wb::obs {

class FlightRecorder;

/// Pipeline stage that observed the failure. Order is the export order.
enum class DropStage : std::uint8_t {
  kConditioning,      ///< reader::condition_into
  kUplinkDecoder,     ///< reader::UplinkDecoder
  kCorrDecoder,       ///< reader::CodedUplinkDecoder
  kAckDetector,       ///< reader::detect_ack
  kStreamingDecoder,  ///< reader::StreamingUplinkDecoder
  kCoreUplink,        ///< core::WiFiBackscatterSystem uplink leg
  kCoreDownlink,      ///< core::WiFiBackscatterSystem downlink leg
  kWifiMac,           ///< wifi::MacSimulator transmissions
  kIngest,            ///< serve::IngestRing admission (capture service)
};
inline constexpr std::size_t kNumDropStages = 9;

/// Why the packet/frame died. One failure exit maps to exactly one reason.
enum class DropReason : std::uint8_t {
  kEmptyTrace,         ///< no usable records reached the stage
  kNoPreamble,         ///< no candidate window ever scored
  kLowSnr,             ///< best correlation below the sync threshold
  kClipped,            ///< winsorisation clamped enough samples to distrust
  kCollision,          ///< MAC-level overlap destroyed the transmission
  kSlicerAmbiguous,    ///< sync found but payload slots carry no packets
  kCrcFail,            ///< bits decoded but the frame checksum rejected them
  kDrainedIncomplete,  ///< flush() discarded a partial tail window
  kBackpressure,       ///< ingest ring full: record evicted or rejected
};
inline constexpr std::size_t kNumDropReasons = 9;

/// Dotted stage name, e.g. "reader.uplink" (stable export token).
const char* to_string(DropStage stage) noexcept;
/// Snake-case reason token, e.g. "no_preamble" (stable export token).
const char* to_string(DropReason reason) noexcept;
/// Stage token with '_' for '.', e.g. "reader_uplink" — used in mirrored
/// metric names and exemplar file names.
const char* metric_token(DropStage stage) noexcept;

/// Per-stage attempt/decode/drop counters plus the bounded exemplar store.
/// Counter updates are lock-free; the exemplar store takes a mutex (cold
/// path: at most `exemplar_cap` times per (stage, reason) per sink).
class ForensicsSink {
 public:
  /// `exemplar_cap` = max retained raw traces per (stage, reason).
  explicit ForensicsSink(std::size_t exemplar_cap = kDefaultExemplarCap);

  ForensicsSink(const ForensicsSink&) = delete;
  ForensicsSink& operator=(const ForensicsSink&) = delete;

  static constexpr std::size_t kDefaultExemplarCap = 2;

  /// A decode attempt entered `stage`.
  void record_attempt(DropStage stage) noexcept;
  /// The attempt at `stage` succeeded.
  void record_decode(DropStage stage) noexcept;
  /// The attempt at `stage` failed for `reason`. Mirrors a
  /// `forensics.<stage>.<reason>_total` counter into the installed metrics
  /// registry (if any) so RunReports and wb_report_diff see drop reasons.
  WB_REALTIME void record_drop(DropStage stage, DropReason reason);

  /// True while the (stage, reason) exemplar slot has room — call before
  /// paying for trace serialization.
  bool wants_exemplar(DropStage stage, DropReason reason) const noexcept;
  /// Store a pre-serialized capture CSV (trace_io format). Ignored once
  /// the (stage, reason) slot is full.
  void add_exemplar(DropStage stage, DropReason reason, std::string csv);

  std::uint64_t attempts(DropStage stage) const noexcept;
  std::uint64_t decodes(DropStage stage) const noexcept;
  std::uint64_t drops(DropStage stage, DropReason reason) const noexcept;
  /// Sum of drops(stage, *) — equals attempts(stage) - decodes(stage).
  std::uint64_t total_drops(DropStage stage) const noexcept;
  /// Sum of drops over all stages and reasons.
  std::uint64_t total_drops() const noexcept;

  std::size_t exemplar_cap() const noexcept { return exemplar_cap_; }
  std::size_t num_exemplars() const;

  /// Accumulate another sink: counters add; exemplars append in the
  /// other sink's stored order until this sink's caps fill. Merging sinks
  /// in ascending task order therefore yields the same bytes regardless
  /// of how tasks were scheduled (see runner::merge_forensics_in_order).
  void merge_from(const ForensicsSink& other);

  /// Deterministic JSONL: a meta line, one line per stage (zeros
  /// included), one aggregate line per reason (zeros included — this is
  /// the taxonomy-coverage surface check.sh pins), one line per nonzero
  /// (stage, reason) pair, one line per stored exemplar, and, when
  /// `recorder` is non-null, one line per flight-recorder event.
  std::string to_jsonl(const FlightRecorder* recorder = nullptr) const;
  /// Returns false if the file cannot be written.
  bool write_jsonl(const std::string& path,
                   const FlightRecorder* recorder = nullptr) const;
  /// Write each stored exemplar to `<prefix>.<stage>_<reason>.<ordinal>.csv`
  /// (replayable via `trace_io --in`); returns how many files were written.
  std::size_t write_exemplars(const std::string& prefix) const;

 private:
  struct Exemplar {
    DropStage stage;
    DropReason reason;
    std::size_t ordinal = 0;  ///< per-(stage, reason) index, 0-based
    std::string csv;
  };

  static std::size_t cell(DropStage stage, DropReason reason) noexcept {
    return static_cast<std::size_t>(stage) * kNumDropReasons +
           static_cast<std::size_t>(reason);
  }

  std::size_t exemplar_cap_;
  std::array<std::atomic<std::uint64_t>, kNumDropStages> attempts_{};
  std::array<std::atomic<std::uint64_t>, kNumDropStages> decodes_{};
  std::array<std::atomic<std::uint64_t>, kNumDropStages * kNumDropReasons>
      drops_{};
  /// Filled count per (stage, reason); lets wants_exemplar() answer
  /// without the lock.
  std::array<std::atomic<std::uint32_t>, kNumDropStages * kNumDropReasons>
      exemplar_counts_{};

  mutable util::Mutex mu_;  ///< guards exemplars_
  std::vector<Exemplar> exemplars_ WB_GUARDED_BY(mu_);
};

/// The sink installed on *this thread*; nullptr when forensics is off.
/// Same contract as obs::metrics(): sites must null-check, and sweep
/// workers see only the sink their own task installed.
ForensicsSink* forensics() noexcept;

/// RAII install/restore of this thread's sink.
class ScopedForensics {
 public:
  explicit ScopedForensics(ForensicsSink& sink);
  ~ScopedForensics();
  ScopedForensics(const ScopedForensics&) = delete;
  ScopedForensics& operator=(const ScopedForensics&) = delete;

 private:
  ForensicsSink* prev_;
};

}  // namespace wb::obs
