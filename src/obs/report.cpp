#include "obs/report.h"

#include <cstdio>

#include "obs/json.h"

namespace wb::obs {

namespace {

std::string value_json(const RunReport::Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return json_number(*d);
  if (const auto* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  // Sequential += (not chained +) sidesteps a GCC 12 -Wrestrict false
  // positive on inlined string concatenation; same throughout this file.
  std::string out = "\"";
  out += json_escape(std::get<std::string>(v));
  out += '"';
  return out;
}

// RFC 4180: a field containing a comma, quote, or line break must be
// wrapped in quotes with inner quotes doubled; any other field may be
// emitted bare. Used for row names and header keys — string VALUES are
// always quoted (below) so a numeric-looking string round-trips as a
// string.
std::string csv_field(std::string_view text) {
  const bool needs_quoting =
      text.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(text);
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string value_csv(const RunReport::Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return json_number(*d);
  if (const auto* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  // CSV quoting: wrap in quotes, double any inner quote.
  std::string out = "\"";
  for (const char c : std::get<std::string>(v)) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && written == content.size();
}

}  // namespace

RunReport::Row& RunReport::Row::set(std::string_view key, double value) {
  fields_.emplace_back(std::string(key), Value(value));
  return *this;
}

RunReport::Row& RunReport::Row::set(std::string_view key,
                                    std::string_view value) {
  fields_.emplace_back(std::string(key), Value(std::string(value)));
  return *this;
}

RunReport::Row& RunReport::Row::set_bool(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), Value(value));
  return *this;
}

void RunReport::set_meta(std::string_view key, std::string_view value) {
  meta_.emplace_back(std::string(key), Value(std::string(value)));
}

void RunReport::set_meta(std::string_view key, double value) {
  meta_.emplace_back(std::string(key), Value(value));
}

void RunReport::set_meta_bool(std::string_view key, bool value) {
  meta_.emplace_back(std::string(key), Value(value));
}

RunReport::Row& RunReport::add_row(std::string_view name) {
  rows_.emplace_back(std::string(name));
  return rows_.back();
}

void RunReport::attach_metrics(const MetricsRegistry& reg) {
  metrics_ = reg.snapshot();
}

std::string RunReport::to_json() const {
  std::string out = "{\n  \"meta\": {";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n    \"";
    out += json_escape(meta_[i].first);
    out += "\": ";
    out += value_json(meta_[i].second);
  }
  out += meta_.empty() ? "},\n" : "\n  },\n";

  out += "  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ",";
    out += "\n    {\"row\": \"";
    out += json_escape(rows_[r].name());
    out += "\"";
    for (const auto& [key, value] : rows_[r].fields()) {
      out += ", \"";
      out += json_escape(key);
      out += "\": ";
      out += value_json(value);
    }
    out += "}";
  }
  out += rows_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"metrics\": {\n    \"counters\": {";
  for (std::size_t i = 0; i < metrics_.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n      \"";
    out += json_escape(metrics_.counters[i].first);
    out += "\": ";
    out += std::to_string(metrics_.counters[i].second);
  }
  out += metrics_.counters.empty() ? "},\n" : "\n    },\n";
  out += "    \"gauges\": {";
  for (std::size_t i = 0; i < metrics_.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n      \"";
    out += json_escape(metrics_.gauges[i].first);
    out += "\": ";
    out += json_number(metrics_.gauges[i].second);
  }
  out += metrics_.gauges.empty() ? "},\n" : "\n    },\n";
  out += "    \"histograms\": {";
  for (std::size_t i = 0; i < metrics_.histograms.size(); ++i) {
    if (i > 0) out += ",";
    const auto& [name, h] = metrics_.histograms[i];
    out += "\n      \"";
    out += json_escape(name);
    out += "\": {\"count\": ";
    out += std::to_string(h.count);
    out += ", \"sum\": ";
    out += json_number(h.sum);
    out += ", \"min\": ";
    out += json_number(h.min);
    out += ", \"max\": ";
    out += json_number(h.max);
    out += ", \"p50\": ";
    out += json_number(h.p50);
    out += ", \"p95\": ";
    out += json_number(h.p95);
    out += ", \"p99\": ";
    out += json_number(h.p99);
    out += "}";
  }
  out += metrics_.histograms.empty() ? "}\n" : "\n    }\n";
  out += "  }\n}\n";
  return out;
}

std::string RunReport::rows_csv() const {
  // Header: union of field keys in first-seen order.
  std::vector<std::string> keys;
  for (const Row& row : rows_) {
    for (const auto& [key, value] : row.fields()) {
      bool known = false;
      for (const auto& k : keys) {
        if (k == key) {
          known = true;
          break;
        }
      }
      if (!known) keys.push_back(key);
    }
  }
  std::string out = "row";
  for (const auto& k : keys) out += "," + csv_field(k);
  out += "\n";
  for (const Row& row : rows_) {
    out += csv_field(row.name());
    for (const auto& k : keys) {
      out += ",";
      for (const auto& [key, value] : row.fields()) {
        if (key == k) {
          out += value_csv(value);
          break;
        }
      }
    }
    out += "\n";
  }
  return out;
}

bool RunReport::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

bool RunReport::write_csv(const std::string& path) const {
  return write_file(path, rows_csv());
}

}  // namespace wb::obs
