#include "obs/health.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/parse.h"

namespace wb::obs {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<SloRule::Stat> parse_stat(std::string_view token) {
  if (token == "value") return SloRule::Stat::kValue;
  if (token == "p50") return SloRule::Stat::kP50;
  if (token == "p95") return SloRule::Stat::kP95;
  if (token == "p99") return SloRule::Stat::kP99;
  if (token == "mean") return SloRule::Stat::kMean;
  if (token == "count") return SloRule::Stat::kCount;
  return std::nullopt;
}

const char* stat_token(SloRule::Stat stat) {
  switch (stat) {
    case SloRule::Stat::kValue: return "value";
    case SloRule::Stat::kP50: return "p50";
    case SloRule::Stat::kP95: return "p95";
    case SloRule::Stat::kP99: return "p99";
    case SloRule::Stat::kMean: return "mean";
    case SloRule::Stat::kCount: return "count";
  }
  return "value";
}

/// Counter (then gauge) value by name; nullopt when neither exists.
std::optional<double> scalar_value(const MetricsRegistry::Snapshot& snap,
                                   const std::string& name) {
  const auto c = std::lower_bound(
      snap.counters.begin(), snap.counters.end(), name,
      [](const auto& kv, const std::string& n) { return kv.first < n; });
  if (c != snap.counters.end() && c->first == name) {
    return static_cast<double>(c->second);
  }
  const auto g = std::lower_bound(
      snap.gauges.begin(), snap.gauges.end(), name,
      [](const auto& kv, const std::string& n) { return kv.first < n; });
  if (g != snap.gauges.end() && g->first == name) return g->second;
  return std::nullopt;
}

std::optional<MetricsRegistry::HistogramStats> histogram_stats(
    const MetricsRegistry::Snapshot& snap, const std::string& name) {
  const auto h = std::lower_bound(
      snap.histograms.begin(), snap.histograms.end(), name,
      [](const auto& kv, const std::string& n) { return kv.first < n; });
  if (h != snap.histograms.end() && h->first == name) return h->second;
  return std::nullopt;
}

}  // namespace

std::optional<SloRule> parse_slo_rule(std::string_view spec) {
  SloRule rule;
  const auto le = spec.find("<=");
  const auto ge = spec.find(">=");
  std::size_t op_pos = 0;
  if (le != std::string_view::npos &&
      (ge == std::string_view::npos || le < ge)) {
    rule.op = SloRule::Op::kLe;
    op_pos = le;
  } else if (ge != std::string_view::npos) {
    rule.op = SloRule::Op::kGe;
    op_pos = ge;
  } else {
    return std::nullopt;
  }

  const std::string_view bound_text = trim(spec.substr(op_pos + 2));
  if (!util::parse_full(bound_text, rule.bound)) return std::nullopt;

  std::string_view left = trim(spec.substr(0, op_pos));
  if (const auto eq = left.find('='); eq != std::string_view::npos) {
    rule.name = std::string(trim(left.substr(0, eq)));
    if (rule.name.empty()) return std::nullopt;
    left = trim(left.substr(eq + 1));
  }
  if (const auto colon = left.rfind(':'); colon != std::string_view::npos) {
    const auto stat = parse_stat(trim(left.substr(colon + 1)));
    if (!stat) return std::nullopt;
    rule.stat = *stat;
    left = trim(left.substr(0, colon));
  }
  if (const auto slash = left.find('/'); slash != std::string_view::npos) {
    // Ratios divide two scalar instruments; histogram stats of a ratio
    // have no meaning here.
    if (rule.stat != SloRule::Stat::kValue) return std::nullopt;
    rule.metric = std::string(trim(left.substr(0, slash)));
    rule.denominator = std::string(trim(left.substr(slash + 1)));
    if (rule.denominator.empty()) return std::nullopt;
  } else {
    rule.metric = std::string(left);
  }
  if (rule.metric.empty()) return std::nullopt;
  if (rule.name.empty()) rule.name = to_string(rule);
  return rule;
}

std::string to_string(const SloRule& rule) {
  // wb-analyze: allow(realtime-alloc): overload-set false edge — the hot decode paths call obs::to_string(DropReason) (a const char* switch); name+arity call resolution cannot see parameter types, so it also lands on this cold SLO-rule name builder. Nothing on a decode path ever calls it.
  std::string base = rule.metric;
  if (!rule.denominator.empty()) {
    base += '/';
    base += rule.denominator;
  }
  if (rule.stat != SloRule::Stat::kValue) {
    base += ':';
    base += stat_token(rule.stat);
  }
  base += rule.op == SloRule::Op::kLe ? "<=" : ">=";
  base += json_number(rule.bound);
  if (!rule.name.empty() && rule.name != base) {
    return rule.name + "=" + base;
  }
  return base;
}

void HealthMonitor::add_rule(SloRule rule) {
  rules_.push_back(State{std::move(rule), false});
}

bool HealthMonitor::add_rule(std::string_view spec) {
  auto rule = parse_slo_rule(spec);
  if (!rule) return false;
  add_rule(std::move(*rule));
  return true;
}

std::vector<SloStatus> HealthMonitor::evaluate(const MetricsRegistry& m,
                                               TimeUs now,
                                               FlightRecorder* rec) {
  const auto snap = m.snapshot();
  std::vector<SloStatus> out;
  out.reserve(rules_.size());
  for (auto& state : rules_) {
    const SloRule& rule = state.rule;
    SloStatus status;
    status.name = rule.name;
    if (!rule.denominator.empty()) {
      const auto num = scalar_value(snap, rule.metric);
      const auto den = scalar_value(snap, rule.denominator);
      status.has_value = num.has_value() && den.has_value();
      if (status.has_value && *den != 0.0) status.value = *num / *den;
    } else if (rule.stat == SloRule::Stat::kValue) {
      const auto v = scalar_value(snap, rule.metric);
      status.has_value = v.has_value();
      status.value = v.value_or(0.0);
    } else {
      const auto h = histogram_stats(snap, rule.metric);
      status.has_value = h.has_value();
      if (h) {
        switch (rule.stat) {
          case SloRule::Stat::kP50: status.value = h->p50; break;
          case SloRule::Stat::kP95: status.value = h->p95; break;
          case SloRule::Stat::kP99: status.value = h->p99; break;
          case SloRule::Stat::kMean:
            status.value =
                h->count ? h->sum / static_cast<double>(h->count) : 0.0;
            break;
          case SloRule::Stat::kCount:
            status.value = static_cast<double>(h->count);
            break;
          case SloRule::Stat::kValue: break;  // unreachable, parse rejects
        }
      }
    }
    // Ceilings with nothing measured are vacuously healthy; floors with
    // nothing measured are breached (the supply the rule demands never
    // materialised).
    if (rule.op == SloRule::Op::kLe) {
      status.breached = status.has_value && status.value > rule.bound;
    } else {
      status.breached = !status.has_value || status.value < rule.bound;
    }
    if (status.breached != state.breached && rec != nullptr) {
      std::string msg = status.breached ? "slo breach: " : "slo recovered: ";
      msg += rule.name;
      rec->log(now, status.breached ? Severity::kError : Severity::kInfo,
               "health", msg,
               {{"value", status.value}, {"bound", rule.bound}});
    }
    state.breached = status.breached;
    out.push_back(std::move(status));
  }
  return out;
}

std::size_t HealthMonitor::breached_count() const noexcept {
  std::size_t n = 0;
  for (const auto& state : rules_) n += state.breached ? 1 : 0;
  return n;
}

}  // namespace wb::obs
