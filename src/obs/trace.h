// Virtual-time tracer: records spans, instants, and counter tracks on the
// simulation's virtual microsecond clock and exports Chrome trace_event
// JSON, so a whole simulated query/response exchange can be opened in
// chrome://tracing (or https://ui.perfetto.dev).
//
// Virtual time maps directly onto the trace format: trace_event `ts`/`dur`
// are microseconds, exactly our TimeUs. Lanes (Chrome "threads") separate
// the pipeline stages — protocol, downlink, uplink, mac, sim — and each
// sub-simulation runs its own virtual clock from 0, so callers that stitch
// several sub-simulations into one exchange install a ScopedTraceOffset to
// place inner events on the outer timeline.
//
// Like the metrics registry, tracing is off by default: sites guard on
// `obs::tracer()` returning non-null, so the disabled path is one global
// load and branch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/units.h"

namespace wb::obs {

/// Collects trace events in memory; export with to_json()/write_json().
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// One key=value annotation on an event (rendered in the trace viewer's
  /// detail pane).
  using Arg = std::pair<std::string, double>;

  /// Lane ("thread") id for a named pipeline stage; created on first use.
  int lane(std::string_view name);

  /// Complete event: a span [start, start+dur) on `lane_id`.
  void complete(int lane_id, std::string_view name, std::string_view category,
                TimeUs start_us, TimeUs dur_us, std::vector<Arg> args = {});

  /// Instant event: a zero-duration marker.
  void instant(int lane_id, std::string_view name, std::string_view category,
               TimeUs ts_us, std::vector<Arg> args = {});

  /// Counter track sample: `name` plotted over time in its own track.
  void counter(std::string_view name, TimeUs ts_us, double value);

  /// Current offset added to every recorded timestamp (see
  /// ScopedTraceOffset).
  TimeUs offset() const { return offset_; }
  void set_offset(TimeUs offset_us) { offset_ = offset_us; }

  std::size_t num_events() const { return events_.size(); }

  /// The full Chrome trace: {"traceEvents": [...]} with thread-name
  /// metadata so lanes are labelled in the viewer.
  std::string to_json() const;
  /// Returns false (and records nothing) if the file cannot be written.
  bool write_json(const std::string& path) const;

 private:
  struct Event {
    char phase;  ///< 'X' complete, 'i' instant, 'C' counter
    int tid;
    TimeUs ts;
    TimeUs dur;
    std::string name;
    std::string category;
    std::vector<Arg> args;
  };

  std::vector<Event> events_;
  std::vector<std::string> lanes_;
  TimeUs offset_{0};
};

/// The tracer installed on *this thread*; nullptr when tracing is off.
/// Thread-local for the same reason as obs::metrics(): the Tracer is
/// single-writer, and sweep worker threads must not feed a tracer the
/// caller's thread installed.
Tracer* tracer() noexcept;

/// RAII install/restore of this thread's tracer.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer& t);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* prev_;
};

class FlightRecorder;

/// Shifts the installed tracer's *and* flight recorder's clocks by
/// `delta_us` for the current scope: events recorded by inner
/// sub-simulations (which run their own virtual clocks from 0) land at
/// the right place on the outer timeline. No-op when both are off.
class ScopedTraceOffset {
 public:
  explicit ScopedTraceOffset(TimeUs delta_us);
  ~ScopedTraceOffset();
  ScopedTraceOffset(const ScopedTraceOffset&) = delete;
  ScopedTraceOffset& operator=(const ScopedTraceOffset&) = delete;

 private:
  Tracer* tracer_;
  FlightRecorder* recorder_;
  TimeUs prev_{0};
  TimeUs prev_rec_{0};
};

}  // namespace wb::obs
