// Metrics registry: named counters, gauges, and log-bucketed histograms
// for the whole uplink/downlink pipeline.
//
// The paper's protocol (§5) is driven by runtime-measured quantities — the
// helper's packet rate N, the packets-per-bit budget M, per-sub-channel
// noise variance, downlink retry counts. This registry makes those
// quantities observable from outside the modules that compute them.
//
// Design rules:
//   * Names follow `module.thing.unit` (lowercase dotted, unit-suffixed
//     last segment, e.g. `reader.uplink.bits_decoded_total`,
//     `core.system.tag_energy_uj`). tools/wb_lint.py enforces the format.
//   * The hot path is lock-free: Counter/Gauge/LogHistogram updates are
//     relaxed atomics, safe for per-packet use and for future threading.
//     Only name registration (`counter()`/`gauge()`/`histogram()`) takes a
//     mutex; per-packet loops should hoist the returned reference.
//   * Observability is off by default. Instrumentation sites guard on
//     `obs::metrics()` returning non-null, so the disabled path is one
//     global load and branch — tier-1 numbers are unaffected.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace wb::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written (or accumulated) scalar.
///
/// A gauge updated through max_of() becomes a *peak* gauge: registry
/// merges combine it with max() instead of last-merge-wins, so a merged
/// peak equals what one shared gauge would have recorded. Mixing set()
/// and max_of() on the same gauge has no serial-equivalent merge and is
/// unsupported — pick one update style per metric name.
class Gauge {
 public:
  void set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(double dx) noexcept { v_.fetch_add(dx, std::memory_order_relaxed); }
  /// Raise the gauge to `x` if larger (peak tracking, e.g. queue depth).
  /// Marks the gauge as a peak gauge for merging.
  void max_of(double x) noexcept;
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  /// True once max_of() has ever updated this gauge.
  bool is_peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
  std::atomic<bool> peak_{false};
};

/// Log-bucketed histogram over positive values (HdrHistogram-style).
///
/// Buckets grow geometrically by 2^(1/kBucketsPerOctave), so any recorded
/// value lands in a bucket whose bounds are within ~9% of it and reported
/// percentiles (geometric bucket midpoint) are within ~4.5% relative
/// error. Values <= kMinValue (including zero and negatives) collapse into
/// an underflow bucket; values beyond the top into an overflow bucket.
/// record() is a relaxed fetch_add plus min/max CAS loops — cheap enough
/// for per-packet decoder paths.
class LogHistogram {
 public:
  static constexpr double kMinValue = 1e-9;
  static constexpr int kBucketsPerOctave = 8;
  static constexpr int kOctaves = 70;  ///< covers kMinValue .. ~1.2e12
  static constexpr int kNumBuckets = kOctaves * kBucketsPerOctave + 2;

  LogHistogram();

  void record(double v) noexcept;

  /// Accumulates `other` into this histogram bucket-wise: counts, sums,
  /// and exact min/max combine as if every sample had been recorded here.
  /// Addition commutes, so merged percentiles are independent of merge
  /// order. Both sides must be quiescent for an exact result: a record()
  /// racing on `other` may be only partially included, and one racing on
  /// `this` may have its min/max clobbered by the empty-destination
  /// seeding path. (The sweep merge runs after wait_idle(), so per-task
  /// histograms are always quiescent there.)
  void merge_from(const LogHistogram& other) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  /// Smallest / largest recorded value (exact, not bucketed). 0 when empty.
  double min() const noexcept;
  double max() const noexcept;

  /// Value at percentile p by the nearest-rank method: the value of the
  /// sample at 1-based rank ceil(p/100 * count), read as its bucket's
  /// geometric midpoint clamped to the exact [min(), max()].
  ///
  /// Pinned edge behaviour (tests/test_obs_metrics.cpp asserts each):
  ///   * empty histogram       -> exactly 0.0 for every p;
  ///   * p <= 0                -> the lowest sample's bucket (rank is
  ///                              floored to 1, p is clamped to [0, 100]);
  ///   * p >= 100              -> the highest sample's bucket;
  ///   * all samples in one bucket -> every p in [0, 100] returns the
  ///                              same value (midpoint clamped to the
  ///                              exact min/max);
  ///   * samples <= kMinValue  -> the underflow bucket has no meaningful
  ///                              midpoint, so the exact min() is
  ///                              returned instead.
  double percentile(double p) const noexcept;

 private:
  static int bucket_index(double v) noexcept;
  static double bucket_midpoint(int i) noexcept;

  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Name -> instrument map. Instrument references remain valid for the
/// registry's lifetime (storage is node-based).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LogHistogram& histogram(std::string_view name);

  /// Folds every instrument of `other` into this registry, creating
  /// instruments as needed: counters and histograms accumulate; gauges
  /// take `other`'s value (last-merge-wins), except peak gauges (ever
  /// updated via Gauge::max_of), which combine with max(). Merging
  /// per-task registries in ascending task order therefore reproduces
  /// exactly what a serial run writing into one shared registry would
  /// have left behind — the invariant wb::runner's deterministic sweeps
  /// rely on. Thread-safe against concurrent lookups and instrument
  /// creation on both registries; instrument *updates* racing with the
  /// merge give approximate results (see LogHistogram::merge_from), so
  /// merge quiescent registries — as the sweep does after wait_idle() —
  /// when exactness matters.
  void merge_from(const MetricsRegistry& other);

  /// A consistent point-in-time copy of every instrument, sorted by name.
  struct HistogramStats {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramStats>> histograms;
  };
  Snapshot snapshot() const;

 private:
  /// The merge body; merge_from() calls it with both map locks held.
  void merge_locked(const MetricsRegistry& other)
      WB_REQUIRES(mu_, other.mu_);

  mutable util::Mutex mu_;  ///< guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      WB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      WB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>>
      histograms_ WB_GUARDED_BY(mu_);
};

/// The registry installed on *this thread*; nullptr when observability is
/// off (the default). Instrumentation sites do
///   if (auto* m = obs::metrics()) m->counter("...").add(1);
/// The install point is thread-local so parallel sweep tasks each observe
/// their own registry (merged afterwards in task order by wb::runner) and
/// never race on a registry installed by another thread. Single-threaded
/// programs see exactly the old process-global behaviour.
MetricsRegistry* metrics() noexcept;

/// RAII install/restore of this thread's registry (mirrors
/// ScopedContractPolicy). Each thread nests its own stack of installs.
/// The pointer form mirrors ScopedFlightRecorder: passing nullptr
/// *suppresses* metrics for the scope — serve's session dispatch uses it
/// so decoder-internal metrics are identical whether a session runs
/// inline (caller's registry visible) or on a worker thread (none).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry& r);
  explicit ScopedMetrics(MetricsRegistry* r);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace wb::obs
