#include "obs/trace.h"

#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "util/check.h"

namespace wb::obs {

namespace {
// Thread-local like obs::metrics(): the Tracer itself is not
// thread-safe, so a tracer installed by one thread must never be fed by
// another (sweep workers simply trace nothing unless they install their
// own).
thread_local Tracer* t_tracer = nullptr;
}  // namespace

Tracer* tracer() noexcept { return t_tracer; }

ScopedTracer::ScopedTracer(Tracer& t) : prev_(t_tracer) { t_tracer = &t; }

ScopedTracer::~ScopedTracer() { t_tracer = prev_; }

ScopedTraceOffset::ScopedTraceOffset(TimeUs delta_us)
    : tracer_(t_tracer), recorder_(recorder()) {
  if (tracer_ != nullptr) {
    prev_ = tracer_->offset();
    tracer_->set_offset(prev_ + delta_us);
  }
  // The flight recorder shares the tracer's stitched protocol timeline:
  // a sub-simulation's events land at the same virtual instant in both.
  if (recorder_ != nullptr) {
    prev_rec_ = recorder_->offset();
    recorder_->set_offset(prev_rec_ + delta_us);
  }
}

ScopedTraceOffset::~ScopedTraceOffset() {
  if (tracer_ != nullptr) tracer_->set_offset(prev_);
  if (recorder_ != nullptr) recorder_->set_offset(prev_rec_);
}

int Tracer::lane(std::string_view name) {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i] == name) return static_cast<int>(i);
  }
  lanes_.emplace_back(name);
  return static_cast<int>(lanes_.size() - 1);
}

void Tracer::complete(int lane_id, std::string_view name,
                      std::string_view category, TimeUs start_us,
                      TimeUs dur_us, std::vector<Arg> args) {
  WB_REQUIRE(dur_us >= TimeUs{}, "span duration must be non-negative");
  events_.push_back(Event{'X', lane_id, start_us + offset_, dur_us,
                          std::string(name), std::string(category),
                          std::move(args)});
}

void Tracer::instant(int lane_id, std::string_view name,
                     std::string_view category, TimeUs ts_us,
                     std::vector<Arg> args) {
  events_.push_back(Event{'i', lane_id, ts_us + offset_, TimeUs{}, std::string(name),
                          std::string(category), std::move(args)});
}

void Tracer::counter(std::string_view name, TimeUs ts_us, double value) {
  events_.push_back(Event{'C', 0, ts_us + offset_, TimeUs{}, std::string(name),
                          "counter", {{std::string(name), value}}});
}

std::string Tracer::to_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };
  // Thread-name metadata labels each lane in the viewer. (Appends are
  // sequential += rather than chained + to sidestep a GCC 12 -Wrestrict
  // false positive on inlined string concatenation.)
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i);
    out += ",\"args\":{\"name\":\"";
    out += json_escape(lanes_[i]);
    out += "\"}}";
  }
  for (const Event& e : events_) {
    sep();
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += std::to_string(e.ts.ticks());
    if (e.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(e.dur.ticks());
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"";
        out += json_escape(e.args[i].first);
        out += "\":";
        out += json_number(e.args[i].second);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace wb::obs
