// Single-bit uplink acknowledgments (paper §4.1): "the Wi-Fi Backscatter
// tag can reduce the overhead of the ACK packet by dropping the preamble
// and the address fields, and transmitting a single bit message."
//
// Because the reader knows *when* it finished its downlink transmission,
// no preamble is needed: the tag backscatters a short fixed chip pattern
// at a fixed offset after decoding, and the reader correlates exactly that
// pattern at exactly that time across its CSI streams. Detection is a
// threshold on the best correlation magnitude — one bit of information
// (ACK present / absent).
#pragma once

#include <optional>

#include "obs/forensics.h"
#include "reader/conditioning.h"
#include "util/bits.h"
#include "util/units.h"
#include "wifi/capture.h"

namespace wb::reader {

struct AckConfig {
  /// The fixed ACK chip pattern (alternating by default: maximally
  /// distinguishable from the static channel after conditioning).
  BitVec pattern = bits_from_string("10101010");

  /// Chip duration on air.
  TimeUs chip_duration_us{10'000};

  /// Delay between the end of the reader's downlink message and the
  /// tag's ACK (covers the MCU's decode wake-up).
  TimeUs turnaround_us{2'000};

  /// Detection threshold on the per-chip-normalised correlation of the
  /// best stream (same scale as the uplink decoder's sync score).
  double threshold = 0.55;

  /// Timing slack searched around the nominal ACK position (the tag's
  /// clock is an RC-trimmed MCU timer).
  TimeUs jitter_us{2'000};

  TimeUs duration_us() const {
    return chip_duration_us * static_cast<std::int64_t>(pattern.size());
  }
};

struct AckDetection {
  bool detected = false;
  double score = 0.0;    ///< best correlation magnitude
  TimeUs at_us{0};      ///< estimated ACK start
  /// Why detection failed; engaged exactly when !detected.
  std::optional<obs::DropReason> drop_reason;
};

/// Look for the ACK pattern in a conditioned trace around
/// `expected_start_us` (= downlink end + turnaround).
AckDetection detect_ack(const ConditionedTrace& ct, const AckConfig& cfg,
                        TimeUs expected_start_us);

/// Convenience: condition `trace` (CSI) and detect.
AckDetection detect_ack(const wifi::CaptureTrace& trace,
                        const AckConfig& cfg, TimeUs expected_start_us);

}  // namespace wb::reader
