#include "reader/multi_helper.h"

#include <algorithm>
#include <map>

namespace wb::reader {

MultiHelperDecoder::MultiHelperDecoder(UplinkDecoderConfig cfg)
    : cfg_(std::move(cfg)) {}

MultiHelperResult MultiHelperDecoder::decode(
    const wifi::CaptureTrace& trace, std::size_t min_packets) const {
  MultiHelperResult out;

  // Split by transmitter (ordering within each sub-trace is preserved).
  std::map<std::uint32_t, wifi::CaptureTrace> by_source;
  for (const auto& rec : trace) {
    by_source[rec.source].push_back(rec);
  }

  UplinkDecoder dec(cfg_);
  for (auto& [source, sub] : by_source) {
    if (sub.size() < min_packets) continue;
    auto res = dec.decode(sub);
    if (!res.found) continue;
    out.sources_used.push_back(source);
    out.per_source.push_back(std::move(res));
  }
  if (out.per_source.empty()) return out;
  out.found = true;

  // Confidence-weighted per-bit fusion. A source's vote for bit b weighs
  // its per-bit majority margin by its sync quality.
  out.payload.assign(cfg_.payload_bits, 0);
  out.fused_confidence.assign(cfg_.payload_bits, 0.0);
  for (std::size_t b = 0; b < cfg_.payload_bits; ++b) {
    double acc = 0.0;
    double total = 0.0;
    for (const auto& res : out.per_source) {
      const double w =
          res.sync_score * (0.1 + res.confidence[b]);  // abstain != veto
      acc += w * (res.payload[b] ? 1.0 : -1.0);
      total += w;
    }
    out.payload[b] = acc > 0.0 ? 1 : 0;
    out.fused_confidence[b] = total > 0.0 ? std::abs(acc) / total : 0.0;
  }
  return out;
}

}  // namespace wb::reader
