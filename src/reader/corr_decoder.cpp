#include "reader/corr_decoder.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "util/check.h"
#include "wifi/trace_io.h"

#include "reader/decode_workspace.h"
#include "reader/uplink_decoder.h"
#include "util/simd.h"

namespace wb::reader {
namespace {

/// Above this winsorised-sample share, a failed sync is attributed to
/// clipping (interference the clamp fought) rather than a missing
/// preamble.
constexpr double kClippedDistrustFraction = 0.05;

}  // namespace

CodedUplinkDecoder::CodedUplinkDecoder(CodedDecoderConfig cfg)
    : cfg_(std::move(cfg)) {
  WB_REQUIRE(cfg_.codes.length() >= 2,
             "orthogonal codes need at least two chips");
  WB_REQUIRE(!cfg_.preamble.empty());
  WB_REQUIRE(cfg_.chip_duration_us > TimeUs{});
  WB_REQUIRE(cfg_.num_good_streams > 0);
  WB_REQUIRE(cfg_.min_fill >= 0.0 && cfg_.min_fill <= 1.0);
  WB_REQUIRE(!(cfg_.search_from && cfg_.search_to) ||
                 *cfg_.search_to >= *cfg_.search_from,
             "search window must satisfy search_to >= search_from — an "
             "inverted window used to be silently collapsed to a single "
             "probe offset");
  // Expand the preamble into its chip template once.
  preamble_chips_bipolar_.reserve(cfg_.preamble.size() *
                                  cfg_.chips_per_bit());
  for (std::uint8_t b : cfg_.preamble) {
    const BitVec& code = b ? cfg_.codes.one : cfg_.codes.zero;
    for (std::uint8_t c : code) {
      preamble_chips_bipolar_.push_back(c ? 1.0 : -1.0);
    }
  }
  code_diff_bipolar_.reserve(cfg_.chips_per_bit());
  for (std::size_t c = 0; c < cfg_.chips_per_bit(); ++c) {
    code_diff_bipolar_.push_back((cfg_.codes.one[c] ? 1.0 : -1.0) -
                                 (cfg_.codes.zero[c] ? 1.0 : -1.0));
  }
}

double CodedUplinkDecoder::preamble_correlation(const ConditionedTrace& ct,
                                                std::size_t stream,
                                                TimeUs start_us,
                                                DecodeWorkspace& ws) const {
  WB_REQUIRE(stream < ct.num_streams());
  const std::size_t nchips = preamble_chips_bipolar_.size();
  UplinkDecoder::bin_slots_into(ct, stream, start_us, cfg_.chip_duration_us,
                                nchips, ws.slots);
  std::size_t filled = 0;
  double corr = 0.0;
  for (std::size_t i = 0; i < nchips; ++i) {
    if (ws.slots[i].count == 0) continue;
    ++filled;
    corr += ws.slots[i].mean * preamble_chips_bipolar_[i];
  }
  if (static_cast<double>(filled) <
          cfg_.min_fill * static_cast<double>(nchips) ||
      filled == 0) {
    return 0.0;
  }
  return corr / static_cast<double>(filled);
}

double CodedUplinkDecoder::preamble_correlation(const ConditionedTrace& ct,
                                                std::size_t stream,
                                                TimeUs start_us) const {
  DecodeWorkspace ws;
  return preamble_correlation(ct, stream, start_us, ws);
}

CodedDecodeResult CodedUplinkDecoder::decode(
    const wifi::CaptureTrace& trace) const {
  DecodeWorkspace ws;
  CodedDecodeResult out;
  decode_into(trace, ws, out);
  return out;
}

void CodedUplinkDecoder::decode_into(const wifi::CaptureTrace& trace,
                                     DecodeWorkspace& ws,
                                     CodedDecodeResult& out) const {
  condition_into(trace, cfg_.source, cfg_.movavg_window_us, ws,
                 ws.conditioned);
  decode_conditioned_into(ws.conditioned, ws, out);
  // Raw-trace overload: failed attempts leave a replayable exemplar.
  if (out.drop_reason) {
    auto* fx = obs::forensics();
    if (fx != nullptr &&
        fx->wants_exemplar(obs::DropStage::kCorrDecoder, *out.drop_reason)) {
      fx->add_exemplar(obs::DropStage::kCorrDecoder, *out.drop_reason,  // wb-analyze: allow(realtime-alloc): exemplar serialization is wants_exemplar-gated to the first exemplar_cap drops per (stage, reason) — cold by construction
                       wifi::capture_csv_string(trace));
    }
  }
}

void CodedUplinkDecoder::decode_batch_into(
    std::span<const wifi::CaptureTrace> traces, DecodeWorkspace& ws,
    std::vector<CodedDecodeResult>& out) const {
  out.resize(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    decode_into(traces[i], ws, out[i]);
  }
}

CodedDecodeResult CodedUplinkDecoder::decode_conditioned(
    const ConditionedTrace& ct) const {
  DecodeWorkspace ws;
  CodedDecodeResult out;
  decode_conditioned_into(ct, ws, out);
  return out;
}

void CodedUplinkDecoder::decode_conditioned_into(const ConditionedTrace& ct_in,
                                                 DecodeWorkspace& ws,
                                                 CodedDecodeResult& out) const {
  obs::ScopedTimer timer("reader.corr.decode_wall_us");
  auto* fx = obs::forensics();
  if (auto* m = obs::metrics()) {
    m->counter("reader.corr.decodes_total").add(1);
  }
  if (fx != nullptr) fx->record_attempt(obs::DropStage::kCorrDecoder);
  const auto drop = [&](obs::DropReason reason) {
    out.drop_reason = reason;
    if (fx != nullptr) fx->record_drop(obs::DropStage::kCorrDecoder, reason);
    if (auto* rec = obs::recorder()) {
      rec->log(ct_in.num_packets() > 0 ? ct_in.timestamps.front() : TimeUs{0},
               obs::Severity::kWarn, "reader.corr", obs::to_string(reason),
               {{"sync_score", out.sync_score},
                {"clipped_fraction", out.clipped_fraction}});
    }
  };
  out.found = false;
  out.start_us = TimeUs{};
  out.sync_score = 0.0;
  out.payload.clear();
  out.streams.clear();
  out.polarity.clear();
  out.weights.clear();
  out.margin.clear();
  out.clipped_fraction = 0.0;
  out.drop_reason.reset();
  if (ct_in.num_packets() == 0 || ct_in.num_streams() == 0) {
    drop(obs::DropReason::kEmptyTrace);
    return;
  }

  // Winsorise against correlated outliers (see clip_sigma in the config)
  // into the workspace copy; without clipping the input is used as-is.
  // Vectorised elementwise (pack clamp matches std::clamp lane for lane);
  // the clamp count is an exact integer however the lanes are summed, so
  // the per-lane counters can be folded with one hsum.
  const ConditionedTrace* ct = &ct_in;
  if (cfg_.clip_sigma > 0.0) {
    using P = simd::dpack;
    const P lo = P::broadcast(-cfg_.clip_sigma);
    const P hi = P::broadcast(cfg_.clip_sigma);
    double clamped = 0.0;
    std::size_t total = 0;
    ws.clipped.timestamps.assign(ct_in.timestamps.begin(),
                                 ct_in.timestamps.end());
    ws.clipped.streams.resize(ct_in.streams.size());
    for (std::size_t s = 0; s < ct_in.streams.size(); ++s) {
      const auto& src = ct_in.streams[s];
      auto& dst = ws.clipped.streams[s];
      dst.resize(src.size());
      const std::size_t main = src.size() - src.size() % simd::kLanes;
      P cnt = P::zero();
      for (std::size_t k = 0; k < main; k += simd::kLanes) {
        const P v = P::load(src.data() + k);
        P over;
        for (std::size_t l = 0; l < simd::kLanes; ++l) {
          over.lane[l] =
              (v.lane[l] > cfg_.clip_sigma || v.lane[l] < -cfg_.clip_sigma)
                  ? 1.0
                  : 0.0;
        }
        cnt += over;
        P::clamp(v, lo, hi).store(dst.data() + k);
      }
      clamped += cnt.hsum();
      for (std::size_t k = main; k < src.size(); ++k) {
        if (src[k] > cfg_.clip_sigma || src[k] < -cfg_.clip_sigma) {
          clamped += 1.0;
        }
        dst[k] = std::clamp(src[k], -cfg_.clip_sigma, cfg_.clip_sigma);
      }
      total += src.size();
    }
    out.clipped_fraction =
        total > 0 ? clamped / static_cast<double>(total) : 0.0;
    ct = &ws.clipped;
  }

  const std::size_t g = std::min(cfg_.num_good_streams, ct->num_streams());

  // --- Frame sync ---
  TimeUs best_start{0};
  double best_score = -1.0;
  auto& corrs = ws.corrs;
  auto& order = ws.order;
  corrs.resize(ct->num_streams());
  order.resize(ct->num_streams());

  // One shared slot map per candidate start, per-stream contiguous sum
  // passes after it — bit-identical to preamble_correlation per stream
  // (same accumulation order, same sum/count division, shared fill gate).
  const std::size_t nchips = preamble_chips_bipolar_.size();
  auto evaluate = [&](TimeUs tau) {
    UplinkDecoder::bin_window_into(*ct, tau, cfg_.chip_duration_us, nchips,
                                   ws);
    const double need = cfg_.min_fill * static_cast<double>(nchips);
    const bool enough =
        static_cast<double>(ws.bin_filled) >= need && ws.bin_filled > 0;
    for (std::size_t s = 0; s < ct->num_streams(); ++s) {
      if (!enough) {
        corrs[s] = 0.0;
        continue;
      }
      UplinkDecoder::bin_stream_sums_into(*ct, s, ws);
      double corr = 0.0;
      for (std::size_t i = 0; i < nchips; ++i) {
        if (ws.bin_count[i] == 0) continue;
        corr += (ws.bin_sums[i] / static_cast<double>(ws.bin_count[i])) *
                preamble_chips_bipolar_[i];
      }
      corrs[s] = corr / static_cast<double>(ws.bin_filled);
    }
    for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(g),
                      order.end(), [&corrs](std::size_t a, std::size_t b) {
                        return std::abs(corrs[a]) > std::abs(corrs[b]);
                      });
    double score = 0.0;
    for (std::size_t i = 0; i < g; ++i) score += std::abs(corrs[order[i]]);
    return score / static_cast<double>(g);
  };

  if (cfg_.known_start) {
    best_start = *cfg_.known_start;
    best_score = evaluate(best_start);
  } else {
    const TimeUs t0 = ct->timestamps.front();
    const TimeUs t1 = ct->timestamps.back();
    const TimeUs from = cfg_.search_from.value_or(t0);
    const TimeUs to =
        std::max(from, cfg_.search_to.value_or(t1 - cfg_.frame_duration_us()));
    const TimeUs step = cfg_.sync_step_us > TimeUs{}
                            ? cfg_.sync_step_us
                            : cfg_.chip_duration_us / 2;
    for (TimeUs tau = from; tau <= to; tau += std::max(step, TimeUs{1})) {
      const double score = evaluate(tau);
      // First-max-wins: the strict `>` keeps the *earliest* tau among
      // equal peaks. Pinned by tests — see the uplink decoder's sync loop.
      if (score > best_score) {
        best_score = score;
        best_start = tau;
      }
    }
    // Re-evaluate at the winner so corrs/order describe it.
    best_score = evaluate(best_start);
  }

  out.found = best_score > 0.0;
  if (!out.found) {
    // A correlator that clamped a substantial share of its input was
    // fighting interference, not silence: blame the clipping, otherwise
    // the coded preamble simply never appeared.
    drop(out.clipped_fraction > kClippedDistrustFraction
             ? obs::DropReason::kClipped
             : obs::DropReason::kNoPreamble);
    return;
  }
  out.start_us = best_start;
  out.sync_score = best_score;
  out.streams.assign(order.begin(), order.begin() + static_cast<long>(g));
  out.polarity.resize(g);
  out.weights.resize(g);
  for (std::size_t i = 0; i < g; ++i) {
    const double c = corrs[out.streams[i]];
    out.polarity[i] = c >= 0.0 ? 1.0 : -1.0;
    out.weights[i] = std::abs(c);
  }

  // --- Payload: correlate each bit's chip block against both codes ---
  const std::size_t l = cfg_.chips_per_bit();
  out.payload.assign(cfg_.payload_bits, 0);
  out.margin.assign(cfg_.payload_bits, 0.0);
  // One shared slot map per chip block, reused by every selected stream
  // (the map depends only on the timestamps) — bit-identical to the
  // per-(bit, stream) bin_slots_into it replaces.
  for (std::size_t b = 0; b < cfg_.payload_bits; ++b) {
    const TimeUs block_start =
        best_start +
        cfg_.chip_duration_us *
            static_cast<std::int64_t>((cfg_.preamble.size() + b) * l);
    UplinkDecoder::bin_window_into(*ct, block_start, cfg_.chip_duration_us,
                                   l, ws);
    double combined = 0.0;
    for (std::size_t i = 0; i < out.streams.size(); ++i) {
      UplinkDecoder::bin_stream_sums_into(*ct, out.streams[i], ws);
      double diff = 0.0;  // corr(one) - corr(zero)
      for (std::size_t c = 0; c < l; ++c) {
        if (ws.bin_count[c] == 0) continue;
        diff += (ws.bin_sums[c] / static_cast<double>(ws.bin_count[c])) *
                code_diff_bipolar_[c];
      }
      combined += out.weights[i] * out.polarity[i] * diff;
    }
    out.payload[b] = combined > 0.0 ? 1 : 0;
    out.margin[b] = std::abs(combined);
  }
  if (auto* m = obs::metrics()) {
    m->counter("reader.corr.sync_found_total").add(1);
    m->counter("reader.corr.bits_decoded_total").add(out.payload.size());
    m->gauge("reader.corr.sync_score_ratio").set(out.sync_score);
    auto& margin_hist = m->histogram("reader.corr.bit_margin_ratio");
    for (const double margin : out.margin) margin_hist.record(margin);
  }
  if (fx != nullptr) fx->record_decode(obs::DropStage::kCorrDecoder);
}

}  // namespace wb::reader
