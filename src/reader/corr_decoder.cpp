#include "reader/corr_decoder.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "util/check.h"

#include "reader/uplink_decoder.h"

namespace wb::reader {

CodedUplinkDecoder::CodedUplinkDecoder(CodedDecoderConfig cfg)
    : cfg_(std::move(cfg)) {
  WB_REQUIRE(cfg_.codes.length() >= 2,
             "orthogonal codes need at least two chips");
  WB_REQUIRE(!cfg_.preamble.empty());
  WB_REQUIRE(cfg_.chip_duration_us > 0);
  WB_REQUIRE(cfg_.num_good_streams > 0);
  WB_REQUIRE(cfg_.min_fill >= 0.0 && cfg_.min_fill <= 1.0);
  // Expand the preamble into its chip template once.
  preamble_chips_bipolar_.reserve(cfg_.preamble.size() *
                                  cfg_.chips_per_bit());
  for (std::uint8_t b : cfg_.preamble) {
    const BitVec& code = b ? cfg_.codes.one : cfg_.codes.zero;
    for (std::uint8_t c : code) {
      preamble_chips_bipolar_.push_back(c ? 1.0 : -1.0);
    }
  }
  code_diff_bipolar_.reserve(cfg_.chips_per_bit());
  for (std::size_t c = 0; c < cfg_.chips_per_bit(); ++c) {
    code_diff_bipolar_.push_back((cfg_.codes.one[c] ? 1.0 : -1.0) -
                                 (cfg_.codes.zero[c] ? 1.0 : -1.0));
  }
}

double CodedUplinkDecoder::preamble_correlation(const ConditionedTrace& ct,
                                                std::size_t stream,
                                                TimeUs start_us) const {
  WB_REQUIRE(stream < ct.num_streams());
  const std::size_t nchips = preamble_chips_bipolar_.size();
  const auto slots = UplinkDecoder::bin_slots(ct, stream, start_us,
                                              cfg_.chip_duration_us, nchips);
  std::size_t filled = 0;
  double corr = 0.0;
  for (std::size_t i = 0; i < nchips; ++i) {
    if (slots[i].count == 0) continue;
    ++filled;
    corr += slots[i].mean * preamble_chips_bipolar_[i];
  }
  if (static_cast<double>(filled) <
          cfg_.min_fill * static_cast<double>(nchips) ||
      filled == 0) {
    return 0.0;
  }
  return corr / static_cast<double>(filled);
}

CodedDecodeResult CodedUplinkDecoder::decode(
    const wifi::CaptureTrace& trace) const {
  return decode_conditioned(
      condition(trace, cfg_.source, cfg_.movavg_window_us));
}

CodedDecodeResult CodedUplinkDecoder::decode_conditioned(
    const ConditionedTrace& ct_in) const {
  obs::ScopedTimer timer("reader.corr.decode_wall_us");
  if (auto* m = obs::metrics()) {
    m->counter("reader.corr.decodes_total").add(1);
  }
  CodedDecodeResult res;
  if (ct_in.num_packets() == 0 || ct_in.num_streams() == 0) return res;

  // Winsorise against correlated outliers (see clip_sigma in the config).
  ConditionedTrace ct = ct_in;
  if (cfg_.clip_sigma > 0.0) {
    for (auto& stream : ct.streams) {
      for (double& v : stream) {
        v = std::clamp(v, -cfg_.clip_sigma, cfg_.clip_sigma);
      }
    }
  }

  const std::size_t g = std::min(cfg_.num_good_streams, ct.num_streams());

  // --- Frame sync ---
  TimeUs best_start = 0;
  double best_score = -1.0;
  std::vector<double> corrs(ct.num_streams());
  std::vector<std::size_t> order(ct.num_streams());

  auto evaluate = [&](TimeUs tau) {
    for (std::size_t s = 0; s < ct.num_streams(); ++s) {
      corrs[s] = preamble_correlation(ct, s, tau);
    }
    for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(g),
                      order.end(), [&corrs](std::size_t a, std::size_t b) {
                        return std::abs(corrs[a]) > std::abs(corrs[b]);
                      });
    double score = 0.0;
    for (std::size_t i = 0; i < g; ++i) score += std::abs(corrs[order[i]]);
    return score / static_cast<double>(g);
  };

  if (cfg_.known_start) {
    best_start = *cfg_.known_start;
    best_score = evaluate(best_start);
  } else {
    const TimeUs t0 = ct.timestamps.front();
    const TimeUs t1 = ct.timestamps.back();
    const TimeUs from = cfg_.search_from.value_or(t0);
    const TimeUs to =
        std::max(from, cfg_.search_to.value_or(t1 - cfg_.frame_duration_us()));
    const TimeUs step = cfg_.sync_step_us > 0 ? cfg_.sync_step_us
                                              : cfg_.chip_duration_us / 2;
    for (TimeUs tau = from; tau <= to; tau += std::max<TimeUs>(step, 1)) {
      const double score = evaluate(tau);
      if (score > best_score) {
        best_score = score;
        best_start = tau;
      }
    }
    // Re-evaluate at the winner so corrs/order describe it.
    best_score = evaluate(best_start);
  }

  res.found = best_score > 0.0;
  if (!res.found) return res;
  res.start_us = best_start;
  res.sync_score = best_score;
  res.streams.assign(order.begin(), order.begin() + static_cast<long>(g));
  for (std::size_t i = 0; i < g; ++i) {
    const double c = corrs[res.streams[i]];
    res.polarity.push_back(c >= 0.0 ? 1.0 : -1.0);
    res.weights.push_back(std::abs(c));
  }

  // --- Payload: correlate each bit's chip block against both codes ---
  const std::size_t l = cfg_.chips_per_bit();
  res.payload.assign(cfg_.payload_bits, 0);
  res.margin.assign(cfg_.payload_bits, 0.0);
  // Bin the whole frame once per selected stream.
  for (std::size_t b = 0; b < cfg_.payload_bits; ++b) {
    const TimeUs block_start =
        best_start + static_cast<TimeUs>((cfg_.preamble.size() + b) * l) *
                         cfg_.chip_duration_us;
    double combined = 0.0;
    for (std::size_t i = 0; i < res.streams.size(); ++i) {
      const auto slots =
          UplinkDecoder::bin_slots(ct, res.streams[i], block_start,
                                   cfg_.chip_duration_us, l);
      double diff = 0.0;  // corr(one) - corr(zero)
      for (std::size_t c = 0; c < l; ++c) {
        if (slots[c].count == 0) continue;
        diff += slots[c].mean * code_diff_bipolar_[c];
      }
      combined += res.weights[i] * res.polarity[i] * diff;
    }
    res.payload[b] = combined > 0.0 ? 1 : 0;
    res.margin[b] = std::abs(combined);
  }
  if (auto* m = obs::metrics()) {
    m->counter("reader.corr.sync_found_total").add(1);
    m->counter("reader.corr.bits_decoded_total").add(res.payload.size());
    m->gauge("reader.corr.sync_score_ratio").set(res.sync_score);
    auto& margin_hist = m->histogram("reader.corr.bit_margin_ratio");
    for (const double margin : res.margin) margin_hist.record(margin);
  }
  return res;
}

}  // namespace wb::reader
