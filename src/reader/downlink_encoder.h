// Downlink encoding at the Wi-Fi reader (paper §4.1): information rides in
// the *presence or absence* of short Wi-Fi packets.
//
// A '1' bit is one packet of `slot_us`; a '0' bit is an equal silence. The
// reader first transmits a CTS_to_SELF frame whose NAV covers the whole
// message so 802.11-compliant neighbours keep quiet through the silences.
// The standard caps a reservation at 32 ms, so longer messages split into
// multiple reserved chunks.
#pragma once

#include <vector>

#include "util/bits.h"
#include "util/units.h"
#include "wifi/packet.h"

namespace wb::reader {

struct DownlinkEncoderConfig {
  /// Bit slot duration; also the packet length. 50 us -> 20 kbps,
  /// 100 us -> 10 kbps, 200 us -> 5 kbps (the paper's three operating
  /// points).
  TimeUs slot_us{50};

  /// Reader transmit power (the paper uses +16 dBm).
  Dbm tx_power_dbm{16.0};

  /// Airtime of the CTS_to_SELF frame itself (14-byte control frame at a
  /// basic rate plus PLCP preamble).
  TimeUs cts_duration_us{30};

  /// Guard gap between the CTS frame and the first bit slot. Must exceed
  /// the tag detector's comparator fall time (~15 us with the default
  /// smoothing), or the CTS fuses onto the preamble's first run and the
  /// tag's interval matcher never sees the frame start.
  TimeUs sifs_us{40};

  /// Largest NAV reservation the standard allows (§4.1: 32 ms).
  TimeUs max_nav_us = wifi::kMaxNavUs;

  /// Idle gap between successive reserved chunks (contention window the
  /// reader must win again).
  TimeUs inter_chunk_gap_us{300};

  std::uint32_t reader_station_id = 100;

  /// Bits per second this configuration yields inside a chunk.
  double bitrate_bps() const {
    return 1e6 / static_cast<double>(slot_us.ticks());
  }

  /// Max message bits per reserved chunk.
  std::size_t bits_per_chunk() const {
    return static_cast<std::size_t>(
        (max_nav_us - cts_duration_us - sifs_us) / slot_us);
  }
};

/// One ground-truth bit slot of the transmission.
struct DownlinkSlot {
  TimeUs start_us{0};
  std::uint8_t bit = 0;  ///< 1 = packet on air, 0 = silence
};

/// A fully scheduled downlink message.
struct DownlinkTransmission {
  std::vector<wifi::WifiPacket> packets;  ///< CTS frames + bit packets
  std::vector<DownlinkSlot> slots;        ///< ground truth, all bits
  TimeUs start_us{0};
  TimeUs end_us{0};
};

class DownlinkEncoder {
 public:
  explicit DownlinkEncoder(DownlinkEncoderConfig cfg);

  /// Schedule `message` (preamble + payload bits, already framed) starting
  /// at `start_us`. Splits across CTS chunks when necessary.
  DownlinkTransmission encode(const BitVec& message, TimeUs start_us) const;

  const DownlinkEncoderConfig& config() const { return cfg_; }

 private:
  DownlinkEncoderConfig cfg_;
};

}  // namespace wb::reader
