#include "reader/ack_detector.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"
#include "reader/uplink_decoder.h"
#include "util/check.h"

namespace wb::reader {

AckDetection detect_ack(const ConditionedTrace& ct, const AckConfig& cfg,
                        TimeUs expected_start_us) {
  WB_REQUIRE(!cfg.pattern.empty(), "ACK pattern must be non-empty");
  WB_REQUIRE(cfg.chip_duration_us > TimeUs{});
  WB_REQUIRE(cfg.jitter_us >= TimeUs{});
  auto* fx = obs::forensics();
  if (fx != nullptr) fx->record_attempt(obs::DropStage::kAckDetector);
  const auto drop = [&](AckDetection& out, obs::DropReason reason) {
    out.drop_reason = reason;
    if (fx != nullptr) fx->record_drop(obs::DropStage::kAckDetector, reason);
    if (auto* rec = obs::recorder()) {
      rec->log(expected_start_us, obs::Severity::kWarn, "reader.ack",
               obs::to_string(reason), {{"score", out.score}});
    }
  };
  AckDetection out;
  if (ct.num_packets() == 0) {
    drop(out, obs::DropReason::kEmptyTrace);
    return out;
  }

  const std::size_t nchips = cfg.pattern.size();
  const TimeUs step =
      std::max(cfg.chip_duration_us / 4, TimeUs{1});

  bool any_scored = false;
  for (TimeUs tau = expected_start_us - cfg.jitter_us;
       tau <= expected_start_us + cfg.jitter_us; tau += step) {
    for (std::size_t s = 0; s < ct.num_streams(); ++s) {
      const auto slots = UplinkDecoder::bin_slots(
          ct, s, tau, cfg.chip_duration_us, nchips);
      double corr = 0.0;
      std::size_t filled = 0;
      for (std::size_t c = 0; c < nchips; ++c) {
        if (slots[c].count == 0) continue;
        ++filled;
        corr += slots[c].mean * (cfg.pattern[c] ? 1.0 : -1.0);
      }
      if (filled < nchips / 2 || filled == 0) continue;
      any_scored = true;
      const double score = std::abs(corr) / static_cast<double>(filled);
      if (score > out.score) {
        out.score = score;
        out.at_us = tau;
      }
    }
  }
  out.detected = out.score >= cfg.threshold;
  if (out.detected) {
    if (fx != nullptr) fx->record_decode(obs::DropStage::kAckDetector);
  } else {
    // Never scoring a window means no chip pattern was ever visible in
    // the search region; scoring below threshold means it was there but
    // too faint to trust.
    drop(out, any_scored ? obs::DropReason::kLowSnr
                         : obs::DropReason::kNoPreamble);
  }
  return out;
}

AckDetection detect_ack(const wifi::CaptureTrace& trace,
                        const AckConfig& cfg, TimeUs expected_start_us) {
  return detect_ack(condition(trace, MeasurementSource::kCsi), cfg,
                    expected_start_us);
}

}  // namespace wb::reader
