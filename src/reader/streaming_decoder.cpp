#include "reader/streaming_decoder.h"

#include <algorithm>

#include "util/check.h"

namespace wb::reader {

StreamingUplinkDecoder::StreamingUplinkDecoder(StreamingDecoderConfig cfg)
    : cfg_(std::move(cfg)) {
  WB_REQUIRE(!cfg_.decoder.search_from && !cfg_.decoder.search_to,
             "the streaming wrapper manages the search window");
}

TimeUs StreamingUplinkDecoder::scan_interval() const {
  if (cfg_.scan_interval_us > 0) return cfg_.scan_interval_us;
  return cfg_.decoder.frame_duration_us() / 2;
}

std::vector<UplinkDecodeResult> StreamingUplinkDecoder::push(
    const wifi::CaptureRecord& rec) {
  WB_REQUIRE(buffer_.empty() ||
                 rec.timestamp_us >= buffer_.back().timestamp_us,
             "capture records must arrive in time order");
  buffer_.push_back(rec);

  std::vector<UplinkDecodeResult> out;
  const TimeUs now = rec.timestamp_us;
  const TimeUs frame_dur = cfg_.decoder.frame_duration_us();

  // Scan when enough new air time has accumulated: the newest possible
  // frame start we can fully decode is now - frame_dur.
  if (now < next_scan_at_ || now - consumed_until_ < frame_dur) {
    return out;
  }
  next_scan_at_ = now + scan_interval();

  UplinkDecoderConfig dec_cfg = cfg_.decoder;
  dec_cfg.search_from = consumed_until_;
  dec_cfg.search_to = now - frame_dur;
  dec_cfg.sync_threshold = cfg_.sync_threshold;
  if (*dec_cfg.search_to < *dec_cfg.search_from) return out;

  UplinkDecoder dec(dec_cfg);
  auto res = dec.decode(buffer_);
  if (res.found) {
    consumed_until_ = res.start_us + frame_dur;
    ++frames_emitted_;
    out.push_back(std::move(res));
    // A second frame could already be waiting; scan again promptly.
    next_scan_at_ = now;
  } else {
    // The scanned region is clean; never re-scan it (keeps the buffer and
    // the per-scan cost bounded on quiet air).
    consumed_until_ = *dec_cfg.search_to;
  }

  // Trim history that no future frame needs: anything older than the
  // conditioning window behind the consumed point.
  const TimeUs keep_from =
      consumed_until_ > cfg_.history_us ? consumed_until_ - cfg_.history_us
                                        : 0;
  const auto first_kept = std::lower_bound(
      buffer_.begin(), buffer_.end(), keep_from,
      [](const wifi::CaptureRecord& r, TimeUs t) {
        return r.timestamp_us < t;
      });
  if (first_kept != buffer_.begin()) {
    buffer_.erase(buffer_.begin(), first_kept);
  }
  return out;
}

}  // namespace wb::reader
