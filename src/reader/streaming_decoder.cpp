#include "reader/streaming_decoder.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "util/check.h"

namespace wb::reader {
namespace {

UplinkDecoderConfig make_decoder_config(const StreamingDecoderConfig& cfg) {
  WB_REQUIRE(!cfg.decoder.search_from && !cfg.decoder.search_to,
             "the streaming wrapper manages the search window");
  WB_REQUIRE(cfg.history_us >= cfg.decoder.movavg_window_us,
             "history_us must cover the conditioning window "
             "(decoder.movavg_window_us): a shorter history trims records "
             "the moving-average filter still needs");
  UplinkDecoderConfig dec_cfg = cfg.decoder;
  dec_cfg.sync_threshold = cfg.sync_threshold;
  return dec_cfg;
}

/// Adapter backing the vector-returning push()/flush() overloads.
class VectorSink final : public FrameSink {
 public:
  explicit VectorSink(std::vector<UplinkDecodeResult>& out) : out_(out) {}
  void on_frame(const UplinkDecodeResult& frame) override {
    out_.push_back(frame);  // wb-analyze: allow(realtime-alloc): adapter for the allocating vector-returning overloads only; the serving path (push(rec, sink)) reaches Session::on_frame, which copies into preallocated slots
  }

 private:
  std::vector<UplinkDecodeResult>& out_;
};

}  // namespace

StreamingUplinkDecoder::StreamingUplinkDecoder(StreamingDecoderConfig cfg)
    : cfg_(std::move(cfg)), dec_(make_decoder_config(cfg_)) {}

TimeUs StreamingUplinkDecoder::scan_interval() const {
  if (cfg_.scan_interval_us > TimeUs{}) return cfg_.scan_interval_us;
  return cfg_.decoder.frame_duration_us() / 2;
}

void StreamingUplinkDecoder::reset() {
  buffer_.clear();  // keeps capacity: the next session reuses the storage
  consumed_until_ = TimeUs{0};
  next_scan_at_ = TimeUs{0};
  frames_emitted_ = 0;
  drained_reported_ = false;
}

bool StreamingUplinkDecoder::scan(TimeUs search_to_us, FrameSink& sink) {
  dec_.set_search_window(consumed_until_, search_to_us);
  dec_.decode_into(buffer_, ws_, scratch_);
  if (!scratch_.found) return false;
  consumed_until_ = scratch_.start_us + cfg_.decoder.frame_duration_us();
  ++frames_emitted_;
  if (auto* fx = obs::forensics()) {
    fx->record_attempt(obs::DropStage::kStreamingDecoder);
    fx->record_decode(obs::DropStage::kStreamingDecoder);
  }
  sink.on_frame(scratch_);
  return true;
}

void StreamingUplinkDecoder::trim_history() {
  // Trim history that no future frame needs: anything older than the
  // conditioning window behind the consumed point.
  const TimeUs keep_from =
      consumed_until_ > cfg_.history_us
          ? consumed_until_ - cfg_.history_us
          : TimeUs{};
  const auto first_kept = std::lower_bound(
      buffer_.begin(), buffer_.end(), keep_from,
      [](const wifi::CaptureRecord& r, TimeUs t) {
        return r.timestamp_us < t;
      });
  if (first_kept != buffer_.begin()) {
    buffer_.erase(buffer_.begin(), first_kept);
  }
}

std::size_t StreamingUplinkDecoder::push_impl(const wifi::CaptureRecord& rec,
                                              FrameSink& sink) {
  WB_REQUIRE(buffer_.empty() ||
                 rec.timestamp_us >= buffer_.back().timestamp_us,
             "capture records must arrive in time order");
  buffer_.push_back(rec);  // wb-analyze: allow(realtime-alloc): growth is bounded by trim_history() to the history_us window, so steady state reuses capacity — pinned at 0 allocs/record by BENCH_serve
  drained_reported_ = false;  // new data: the next flush() drains afresh

  const TimeUs now = rec.timestamp_us;
  const TimeUs frame_dur = cfg_.decoder.frame_duration_us();

  // Scan when enough new air time has accumulated: the newest possible
  // frame start we can fully decode is now - frame_dur.
  if (now < next_scan_at_ || now - consumed_until_ < frame_dur) {
    return 0;
  }
  next_scan_at_ = now + scan_interval();

  const TimeUs search_to = now - frame_dur;
  if (search_to < consumed_until_) return 0;

  std::size_t emitted = 0;
  if (scan(search_to, sink)) {
    ++emitted;
    // A second frame could already be waiting; scan again promptly.
    next_scan_at_ = now;
  } else {
    // The scanned region is clean; never re-scan it (keeps the buffer and
    // the per-scan cost bounded on quiet air).
    consumed_until_ = search_to;
  }

  trim_history();
  return emitted;
}

std::size_t StreamingUplinkDecoder::push(const wifi::CaptureRecord& rec,
                                         FrameSink& sink) {
  return push_impl(rec, sink);
}

std::vector<UplinkDecodeResult> StreamingUplinkDecoder::push(
    const wifi::CaptureRecord& rec) {
  std::vector<UplinkDecodeResult> out;
  VectorSink sink(out);
  push_impl(rec, sink);
  return out;
}

std::size_t StreamingUplinkDecoder::flush_impl(FrameSink& sink) {
  if (buffer_.empty()) return 0;
  const TimeUs frame_dur = cfg_.decoder.frame_duration_us();
  // The latest start whose frame is fully contained in the buffer; a frame
  // whose tail lands exactly on the final record is included, one that
  // extends past it is not (its last bits were never observed).
  const TimeUs search_to = buffer_.back().timestamp_us - frame_dur;
  std::size_t emitted = 0;
  while (search_to >= consumed_until_ && scan(search_to, sink)) {
    ++emitted;
  }
  consumed_until_ = std::max(consumed_until_, search_to);

  // Whatever still sits past the consumed point can never be decoded —
  // a frame starting there would extend beyond the last observed record.
  // Report the discarded partial tail once per drained session.
  if (!drained_reported_ &&
      buffer_.back().timestamp_us > consumed_until_) {
    drained_reported_ = true;
    if (auto* fx = obs::forensics()) {
      fx->record_attempt(obs::DropStage::kStreamingDecoder);
      fx->record_drop(obs::DropStage::kStreamingDecoder,
                      obs::DropReason::kDrainedIncomplete);
    }
    if (auto* rec = obs::recorder()) {
      rec->log(consumed_until_, obs::Severity::kInfo, "reader.streaming",
               "drained_incomplete",
               {{"tail_us", static_cast<double>(
                     (buffer_.back().timestamp_us - consumed_until_)
                         .ticks())}});
    }
  }
  trim_history();
  return emitted;
}

std::size_t StreamingUplinkDecoder::flush(FrameSink& sink) {
  return flush_impl(sink);
}

std::vector<UplinkDecodeResult> StreamingUplinkDecoder::flush() {
  std::vector<UplinkDecodeResult> out;
  VectorSink sink(out);
  flush_impl(sink);
  return out;
}

}  // namespace wb::reader
