#include "reader/uplink_decoder.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "util/check.h"
#include "wifi/trace_io.h"

#include "util/dsp.h"
#include "util/simd.h"

namespace wb::reader {
namespace {

/// First packet index with timestamp >= t.
std::size_t lower_index(const std::vector<TimeUs>& ts, TimeUs t) {
  return static_cast<std::size_t>(
      std::distance(ts.begin(), std::lower_bound(ts.begin(), ts.end(), t)));
}

}  // namespace

UplinkDecoder::UplinkDecoder(UplinkDecoderConfig cfg) : cfg_(std::move(cfg)) {
  WB_REQUIRE(!cfg_.preamble.empty());
  WB_REQUIRE(cfg_.bit_duration_us > TimeUs{});
  WB_REQUIRE(cfg_.num_good_streams > 0);
  WB_REQUIRE(cfg_.movavg_window_us > TimeUs{});
  WB_REQUIRE(cfg_.hysteresis_sigma >= 0.0);
  WB_REQUIRE(cfg_.min_preamble_fill >= 0.0 && cfg_.min_preamble_fill <= 1.0);
  WB_REQUIRE(!(cfg_.search_from && cfg_.search_to) ||
                 *cfg_.search_to >= *cfg_.search_from,
             "search window must satisfy search_to >= search_from — an "
             "inverted window used to be silently collapsed to a single "
             "probe offset");
}

void UplinkDecoder::bin_slots_into(const ConditionedTrace& ct,
                                   std::size_t stream, TimeUs start_us,
                                   TimeUs slot_us, std::size_t nslots,
                                   std::vector<SlotStat>& out) {
  WB_REQUIRE(stream < ct.num_streams(), "stream index out of range");
  WB_REQUIRE(slot_us > TimeUs{}, "slot duration must be positive");
  WB_REQUIRE(ct.streams[stream].size() == ct.timestamps.size(),
             "conditioned stream must cover every packet");
  out.assign(nslots, SlotStat{});
  const auto& ts = ct.timestamps;
  const auto& xs = ct.streams[stream];
  std::size_t k = lower_index(ts, start_us);
  const TimeUs end =
      start_us + slot_us * static_cast<std::int64_t>(nslots);
  for (; k < ts.size() && ts[k] < end; ++k) {
    const auto slot = static_cast<std::size_t>((ts[k] - start_us) / slot_us);
    out[slot].mean += xs[k];
    ++out[slot].count;
  }
  for (auto& s : out) {
    if (s.count > 0) s.mean /= static_cast<double>(s.count);
  }
}

void UplinkDecoder::bin_window_into(const ConditionedTrace& ct,
                                    TimeUs start_us, TimeUs slot_us,
                                    std::size_t nslots, DecodeWorkspace& ws) {
  WB_REQUIRE(slot_us > TimeUs{}, "slot duration must be positive");
  const auto& ts = ct.timestamps;
  std::size_t k = lower_index(ts, start_us);
  ws.bin_first = k;
  ws.bin_nslots = nslots;
  ws.bin_count.assign(nslots, 0);
  const TimeUs end = start_us + slot_us * static_cast<std::int64_t>(nslots);
  const std::size_t k_end = lower_index(ts, end);
  ws.bin_slot_of.resize(k_end - k);
  for (std::size_t j = 0; k < k_end; ++k, ++j) {
    const auto slot =
        static_cast<std::uint32_t>((ts[k] - start_us) / slot_us);
    ws.bin_slot_of[j] = slot;
    ++ws.bin_count[slot];
  }
  ws.bin_filled = 0;
  for (const std::uint32_t c : ws.bin_count) {
    if (c > 0) ++ws.bin_filled;
  }
}

void UplinkDecoder::bin_stream_sums_into(const ConditionedTrace& ct,
                                         std::size_t stream,
                                         DecodeWorkspace& ws) {
  WB_REQUIRE(stream < ct.num_streams(), "stream index out of range");
  WB_REQUIRE(ct.streams[stream].size() == ct.timestamps.size(),
             "conditioned stream must cover every packet");
  const auto& xs = ct.streams[stream];
  ws.bin_sums.assign(ws.bin_nslots, 0.0);
  const std::size_t k0 = ws.bin_first;
  for (std::size_t j = 0; j < ws.bin_slot_of.size(); ++j) {
    ws.bin_sums[ws.bin_slot_of[j]] += xs[k0 + j];
  }
}

std::vector<UplinkDecoder::SlotStat> UplinkDecoder::bin_slots(
    const ConditionedTrace& ct, std::size_t stream, TimeUs start_us,
    TimeUs slot_us, std::size_t nslots) {
  std::vector<SlotStat> out;
  bin_slots_into(ct, stream, start_us, slot_us, nslots, out);
  return out;
}

double UplinkDecoder::preamble_correlation(const ConditionedTrace& ct,
                                           std::size_t stream,
                                           TimeUs start_us,
                                           DecodeWorkspace& ws) const {
  bin_slots_into(ct, stream, start_us, cfg_.bit_duration_us,
                 cfg_.preamble.size(), ws.slots);
  std::size_t filled = 0;
  double corr = 0.0;
  for (std::size_t i = 0; i < ws.slots.size(); ++i) {
    if (ws.slots[i].count == 0) continue;
    ++filled;
    corr += ws.slots[i].mean * (cfg_.preamble[i] ? 1.0 : -1.0);
  }
  const double need =
      cfg_.min_preamble_fill * static_cast<double>(ws.slots.size());
  if (static_cast<double>(filled) < need || filled == 0) return 0.0;
  return corr / static_cast<double>(filled);
}

double UplinkDecoder::preamble_correlation(const ConditionedTrace& ct,
                                           std::size_t stream,
                                           TimeUs start_us) const {
  DecodeWorkspace ws;
  return preamble_correlation(ct, stream, start_us, ws);
}

bool UplinkDecoder::find_frame(const ConditionedTrace& ct,
                               DecodeWorkspace& ws, TimeUs& start_us,
                               double& score) const {
  obs::DropReason failure{};
  return find_frame(ct, ws, start_us, score, failure);
}

bool UplinkDecoder::find_frame(const ConditionedTrace& ct,
                               DecodeWorkspace& ws, TimeUs& start_us,
                               double& score,
                               obs::DropReason& failure) const {
  if (ct.num_packets() == 0 || ct.num_streams() == 0) {
    failure = obs::DropReason::kEmptyTrace;
    return false;
  }

  const TimeUs t0 = ct.timestamps.front();
  const TimeUs t1 = ct.timestamps.back();
  TimeUs from = cfg_.search_from.value_or(t0);
  TimeUs to = cfg_.search_to.value_or(t1 - cfg_.frame_duration_us());
  from = std::max(from, t0 - cfg_.bit_duration_us);
  // The constructor rejects an inverted *configured* window; this clamp
  // only covers the data-derived default (a trace shorter than one frame
  // makes t1 - frame_duration precede `from`), where probing the single
  // offset `from` is the right degenerate search.
  to = std::max(to, from);
  const TimeUs step =
      cfg_.sync_step_us > TimeUs{} ? cfg_.sync_step_us
                                   : cfg_.bit_duration_us / 4;

  const std::size_t g =
      std::min(cfg_.num_good_streams, ct.num_streams());
  const std::size_t nslots = cfg_.preamble.size();

  bool has_best = false;
  TimeUs best_start{0};
  double best_score = 0.0;
  auto& corrs = ws.corrs;
  auto& order = ws.order;
  corrs.resize(ct.num_streams());
  order.resize(ct.num_streams());
  for (TimeUs tau = from; tau <= to; tau += std::max(step, TimeUs{1})) {
    // One shared slot map per candidate start, then a contiguous
    // sum-accumulation pass per stream: bit-identical to running
    // preamble_correlation per stream (same accumulation order, same
    // sum/count division, shared fill gate), minus the per-stream
    // timestamp walks.
    bin_window_into(ct, tau, cfg_.bit_duration_us, nslots, ws);
    const double need =
        cfg_.min_preamble_fill * static_cast<double>(nslots);
    const bool enough = static_cast<double>(ws.bin_filled) >= need &&
                        ws.bin_filled > 0;
    for (std::size_t s = 0; s < ct.num_streams(); ++s) {
      if (!enough) {
        corrs[s] = 0.0;
        continue;
      }
      bin_stream_sums_into(ct, s, ws);
      double corr = 0.0;
      for (std::size_t i = 0; i < nslots; ++i) {
        if (ws.bin_count[i] == 0) continue;
        corr += (ws.bin_sums[i] / static_cast<double>(ws.bin_count[i])) *
                (cfg_.preamble[i] ? 1.0 : -1.0);
      }
      corrs[s] = corr / static_cast<double>(ws.bin_filled);
    }
    for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(g),
                      order.end(), [&corrs](std::size_t a, std::size_t b) {
                        return std::abs(corrs[a]) > std::abs(corrs[b]);
                      });
    double tau_score = 0.0;
    for (std::size_t i = 0; i < g; ++i) tau_score += std::abs(corrs[order[i]]);
    tau_score /= static_cast<double>(g);
    // First-max-wins: the strict `>` keeps the *earliest* tau among equal
    // peaks. Load-bearing and pinned by tests — a reassociated reduction
    // or a `>=` here would silently shift which frame start wins.
    if (!has_best || tau_score > best_score) {
      has_best = true;
      best_start = tau;
      best_score = tau_score;
      ws.best_streams.assign(order.begin(),
                             order.begin() + static_cast<long>(g));
      ws.best_polarity.resize(g);
      for (std::size_t i = 0; i < g; ++i) {
        ws.best_polarity[i] = corrs[order[i]] >= 0.0 ? 1.0 : -1.0;
      }
    }
  }
  if (!has_best || best_score <= cfg_.sync_threshold) {
    // A best score of exactly 0 means no candidate window ever met the
    // preamble-fill bar — the preamble was never seen. A positive score
    // at/below the threshold is a correlation too weak to trust.
    failure = (!has_best || best_score <= 0.0) ? obs::DropReason::kNoPreamble
                                               : obs::DropReason::kLowSnr;
    return false;
  }
  start_us = best_start;
  score = best_score;
  return true;
}

std::optional<UplinkDecoder::SyncResult> UplinkDecoder::find_frame(
    const ConditionedTrace& ct) const {
  DecodeWorkspace ws;
  TimeUs start{0};
  double score = 0.0;
  if (!find_frame(ct, ws, start, score)) return std::nullopt;
  SyncResult r;
  r.start = start;
  r.score = score;
  r.streams = std::move(ws.best_streams);
  r.polarity = std::move(ws.best_polarity);
  return r;
}

double UplinkDecoder::preamble_noise_variance(const ConditionedTrace& ct,
                                              std::size_t stream,
                                              double polarity,
                                              TimeUs start_us) const {
  WB_REQUIRE(stream < ct.num_streams(), "stream index out of range");
  const auto& ts = ct.timestamps;
  const auto& xs = ct.streams[stream];
  const TimeUs end =
      start_us + cfg_.bit_duration_us *
                     static_cast<std::int64_t>(cfg_.preamble.size());
  double sum = 0.0, sum2 = 0.0;
  std::size_t n = 0;
  for (std::size_t k = lower_index(ts, start_us);
       k < ts.size() && ts[k] < end; ++k) {
    const auto bit = static_cast<std::size_t>((ts[k] - start_us) /
                                              cfg_.bit_duration_us);
    const double expected = cfg_.preamble[bit] ? 1.0 : -1.0;
    const double r = polarity * xs[k] - expected;
    sum += r;
    sum2 += r * r;
    ++n;
  }
  if (n < 2) return 1.0;  // no information: neutral weight
  const double mean = sum / static_cast<double>(n);
  const double var =
      (sum2 - static_cast<double>(n) * mean * mean) /
      static_cast<double>(n - 1);
  // Quantised measurements can produce a numerically zero variance; floor
  // it so 1/sigma^2 weights stay finite.
  const double floored = std::max(var, 1e-6);
  WB_ENSURE(floored > 0.0);
  return floored;
}

UplinkDecodeResult UplinkDecoder::decode(
    const wifi::CaptureTrace& trace) const {
  DecodeWorkspace ws;
  UplinkDecodeResult out;
  decode_into(trace, ws, out);
  return out;
}

void UplinkDecoder::decode_into(const wifi::CaptureTrace& trace,
                                DecodeWorkspace& ws,
                                UplinkDecodeResult& out) const {
  condition_into(trace, cfg_.source, cfg_.movavg_window_us, ws,
                 ws.conditioned);
  decode_conditioned_into(ws.conditioned, ws, out);
  // This overload still holds the raw capture, so it is the one place a
  // failed attempt can leave a replayable exemplar behind. wants_exemplar
  // gates the (allocating) serialization to the first few drops per
  // reason.
  if (out.drop_reason) {
    auto* fx = obs::forensics();
    if (fx != nullptr &&
        fx->wants_exemplar(obs::DropStage::kUplinkDecoder,
                           *out.drop_reason)) {
      fx->add_exemplar(obs::DropStage::kUplinkDecoder, *out.drop_reason,  // wb-analyze: allow(realtime-alloc): exemplar serialization is wants_exemplar-gated to the first exemplar_cap drops per (stage, reason) — cold by construction
                       wifi::capture_csv_string(trace));
    }
  }
}

void UplinkDecoder::decode_batch_into(
    std::span<const wifi::CaptureTrace> traces, DecodeWorkspace& ws,
    std::vector<UplinkDecodeResult>& out) const {
  out.resize(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    decode_into(traces[i], ws, out[i]);
  }
}

UplinkDecodeResult UplinkDecoder::decode_conditioned(
    const ConditionedTrace& ct) const {
  DecodeWorkspace ws;
  UplinkDecodeResult out;
  decode_conditioned_into(ct, ws, out);
  return out;
}

void UplinkDecoder::decode_conditioned_into(const ConditionedTrace& ct,
                                            DecodeWorkspace& ws,
                                            UplinkDecodeResult& out) const {
  obs::ScopedTimer timer("reader.uplink.decode_wall_us");
  auto* m = obs::metrics();
  auto* fx = obs::forensics();
  if (m != nullptr) m->counter("reader.uplink.decodes_total").add(1);
  if (fx != nullptr) fx->record_attempt(obs::DropStage::kUplinkDecoder);

  out.found = false;
  out.start_us = TimeUs{};
  out.sync_score = 0.0;
  out.payload.clear();
  out.streams.clear();
  out.polarity.clear();
  out.weights.clear();
  out.confidence.clear();
  out.packets_used = 0;
  out.drop_reason.reset();

  // Every failure exit funnels through here: one (stage, reason) drop
  // plus a flight-recorder breadcrumb with the sync evidence.
  const auto drop = [&](obs::DropReason reason, double best_score) {
    out.drop_reason = reason;
    if (fx != nullptr) {
      fx->record_drop(obs::DropStage::kUplinkDecoder, reason);
    }
    if (auto* rec = obs::recorder()) {
      rec->log(ct.num_packets() > 0 ? ct.timestamps.front() : TimeUs{0},
               obs::Severity::kWarn, "reader.uplink",
               obs::to_string(reason),
               {{"sync_score", best_score},
                {"packets", static_cast<double>(ct.num_packets())}});
    }
  };

  TimeUs start{0};
  double score = 0.0;
  obs::DropReason sync_failure{};
  if (!find_frame(ct, ws, start, score, sync_failure)) {
    drop(sync_failure, score);
    return;
  }

  out.found = true;
  out.start_us = start;
  out.sync_score = score;
  out.streams.assign(ws.best_streams.begin(), ws.best_streams.end());
  out.polarity.assign(ws.best_polarity.begin(), ws.best_polarity.end());

  if (m != nullptr) {
    m->counter("reader.uplink.sync_found_total").add(1);
    m->gauge("reader.uplink.sync_score_ratio").set(score);
    m->gauge("reader.uplink.streams_selected_count")
        .set(static_cast<double>(out.streams.size()));
  }

  // MRC weights from preamble-estimated noise variance (§3.2 step 2).
  out.weights.resize(out.streams.size());
  for (std::size_t i = 0; i < out.streams.size(); ++i) {
    const double var = preamble_noise_variance(
        ct, out.streams[i], out.polarity[i], start);
    WB_REQUIRE(var > 0.0, "MRC weight 1/sigma^2 needs a positive variance");
    out.weights[i] = 1.0 / var;
  }
  if (m != nullptr && out.weights.size() > 1) {
    // Dispersion of the MRC weights: max/min per decode. Near 1 means the
    // selected streams are equally trustworthy; large means one stream
    // dominates the combination.
    const auto [lo, hi] =
        std::minmax_element(out.weights.begin(), out.weights.end());
    if (*lo > 0.0) {
      m->histogram("reader.uplink.mrc_weight_ratio").record(*hi / *lo);
    }
  }

  // Combined signal y_k over the whole frame interval, vectorised over
  // time (DESIGN.md §15): y starts at zero and the selected streams are
  // accumulated one at a time in selection order, so every y_k replays the
  // scalar chain ((0 + w0*p0*x0) + w1*p1*x1) + ... before one division by
  // wsum — bit-identical to the per-packet scalar loop.
  const auto& ts = ct.timestamps;
  const TimeUs frame_end = start + cfg_.frame_duration_us();
  const std::size_t k0 = lower_index(ts, start);
  const std::size_t k1 = lower_index(ts, frame_end);
  const std::size_t nwin = k1 - k0;
  auto& y = ws.y;
  auto& yt = ws.yt;
  y.assign(nwin, 0.0);
  yt.assign(ts.begin() + static_cast<std::ptrdiff_t>(k0),
            ts.begin() + static_cast<std::ptrdiff_t>(k1));
  double wsum = 0.0;
  for (double w : out.weights) wsum += w;
  if (wsum <= 0.0) wsum = 1.0;
  using P = simd::dpack;
  const std::size_t main = nwin - nwin % simd::kLanes;
  for (std::size_t i = 0; i < out.streams.size(); ++i) {
    // (w*p) is what the scalar expression w * p * x multiplies x by
    // (left-to-right association), so hoisting the product is exact.
    const double wp = out.weights[i] * out.polarity[i];
    const P wpv = P::broadcast(wp);
    const double* x = ct.streams[out.streams[i]].data() + k0;
    for (std::size_t k = 0; k < main; k += simd::kLanes) {
      P::mul_add(wpv, P::load(x + k), P::load(y.data() + k))
          .store(y.data() + k);
    }
    for (std::size_t k = main; k < nwin; ++k) {
      y[k] = wp * x[k] + y[k];
    }
  }
  const P wsv = P::broadcast(wsum);
  for (std::size_t k = 0; k < main; k += simd::kLanes) {
    (P::load(y.data() + k) / wsv).store(y.data() + k);
  }
  for (std::size_t k = main; k < nwin; ++k) y[k] = y[k] / wsum;
  out.packets_used = y.size();

  // Hysteresis thresholds from the combined signal's own statistics
  // (§3.2 step 3: mu +- f(sigma)).
  const double mu = mean(y);
  const double sd = stddev(y);
  const double th1 = mu + cfg_.hysteresis_sigma * sd;
  const double th0 = mu - cfg_.hysteresis_sigma * sd;
  WB_INVARIANT(th0 <= th1, "hysteresis thresholds must be ordered");

  // Per-bit majority vote over timestamp-binned packets.
  const TimeUs payload_start =
      start + cfg_.bit_duration_us *
                  static_cast<std::int64_t>(cfg_.preamble.size());
  out.payload.assign(cfg_.payload_bits, 0);
  out.confidence.assign(cfg_.payload_bits, 0.0);
  ws.votes_one.assign(cfg_.payload_bits, 0);
  ws.votes_zero.assign(cfg_.payload_bits, 0);
  ws.slot_sum.assign(cfg_.payload_bits, 0.0);
  ws.slot_n.assign(cfg_.payload_bits, 0);
  for (std::size_t k = 0; k < y.size(); ++k) {
    if (yt[k] < payload_start) continue;
    const auto bit = static_cast<std::size_t>((yt[k] - payload_start) /
                                              cfg_.bit_duration_us);
    if (bit >= cfg_.payload_bits) break;
    if (y[k] > th1) ++ws.votes_one[bit];
    else if (y[k] < th0) ++ws.votes_zero[bit];
    ws.slot_sum[bit] += y[k];
    ++ws.slot_n[bit];
  }

  // Sync can lock onto preamble-region energy while not a single packet
  // lands in the payload interval; every bit decision below would then be
  // the mu-fallback guess. That is not a decode — reject the frame.
  std::size_t payload_packets = 0;
  for (const int n : ws.slot_n) {
    payload_packets += static_cast<std::size_t>(n);
  }
  if (payload_packets == 0) {
    const double best_score = out.sync_score;
    out.found = false;
    out.start_us = TimeUs{};
    out.sync_score = 0.0;
    out.payload.clear();
    out.streams.clear();
    out.polarity.clear();
    out.weights.clear();
    out.confidence.clear();
    out.packets_used = 0;
    drop(obs::DropReason::kSlicerAmbiguous, best_score);
    return;
  }

  for (std::size_t b = 0; b < cfg_.payload_bits; ++b) {
    const int total = ws.votes_one[b] + ws.votes_zero[b];
    if (ws.votes_one[b] != ws.votes_zero[b]) {
      out.payload[b] = ws.votes_one[b] > ws.votes_zero[b] ? 1 : 0;
      out.confidence[b] =
          total > 0 ? std::abs(ws.votes_one[b] - ws.votes_zero[b]) /
                          static_cast<double>(total)
                    : 0.0;
    } else {
      // All packets abstained (hysteresis band) or tie: fall back to the
      // sign of the slot mean against mu.
      const double slot_mean =
          ws.slot_n[b] > 0 ? ws.slot_sum[b] / static_cast<double>(ws.slot_n[b])
                           : mu;
      out.payload[b] = slot_mean > mu ? 1 : 0;
      out.confidence[b] = 0.0;
    }
  }
  if (m != nullptr) {
    m->counter("reader.uplink.packets_used_total").add(out.packets_used);
    m->counter("reader.uplink.bits_decoded_total").add(out.payload.size());
  }
  if (fx != nullptr) fx->record_decode(obs::DropStage::kUplinkDecoder);
  if (auto* tr = obs::tracer()) {
    tr->complete(tr->lane("reader"), "uplink_frame", "reader",  // wb-analyze: allow(realtime-alloc): Chrome-trace span capture — tracer is nullptr outside diagnostic runs, and span events are inherently allocating
                 out.start_us,
                 static_cast<TimeUs>(cfg_.frame_duration_us()),
                 {{"sync_score", out.sync_score},
                  {"packets_used",
                   static_cast<double>(out.packets_used)}});
  }
}

UplinkDecoderConfig rssi_decoder_config(const UplinkDecoderConfig& base) {
  UplinkDecoderConfig cfg = base;
  cfg.source = MeasurementSource::kRssi;
  cfg.num_good_streams = 1;  // best antenna only (§3.3)
  return cfg;
}

}  // namespace wb::reader
