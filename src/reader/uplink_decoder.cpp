#include "reader/uplink_decoder.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "util/check.h"

#include "util/dsp.h"

namespace wb::reader {
namespace {

/// First packet index with timestamp >= t.
std::size_t lower_index(const std::vector<TimeUs>& ts, TimeUs t) {
  return static_cast<std::size_t>(
      std::distance(ts.begin(), std::lower_bound(ts.begin(), ts.end(), t)));
}

}  // namespace

UplinkDecoder::UplinkDecoder(UplinkDecoderConfig cfg) : cfg_(std::move(cfg)) {
  WB_REQUIRE(!cfg_.preamble.empty());
  WB_REQUIRE(cfg_.bit_duration_us > 0);
  WB_REQUIRE(cfg_.num_good_streams > 0);
  WB_REQUIRE(cfg_.movavg_window_us > 0);
  WB_REQUIRE(cfg_.hysteresis_sigma >= 0.0);
  WB_REQUIRE(cfg_.min_preamble_fill >= 0.0 && cfg_.min_preamble_fill <= 1.0);
}

std::vector<UplinkDecoder::SlotStat> UplinkDecoder::bin_slots(
    const ConditionedTrace& ct, std::size_t stream, TimeUs start_us,
    TimeUs slot_us, std::size_t nslots) {
  WB_REQUIRE(stream < ct.num_streams(), "stream index out of range");
  WB_REQUIRE(slot_us > 0, "slot duration must be positive");
  WB_REQUIRE(ct.streams[stream].size() == ct.timestamps.size(),
             "conditioned stream must cover every packet");
  std::vector<SlotStat> out(nslots);
  const auto& ts = ct.timestamps;
  const auto& xs = ct.streams[stream];
  std::size_t k = lower_index(ts, start_us);
  const TimeUs end = start_us + static_cast<TimeUs>(nslots) * slot_us;
  for (; k < ts.size() && ts[k] < end; ++k) {
    const auto slot = static_cast<std::size_t>((ts[k] - start_us) / slot_us);
    out[slot].mean += xs[k];
    ++out[slot].count;
  }
  for (auto& s : out) {
    if (s.count > 0) s.mean /= static_cast<double>(s.count);
  }
  return out;
}

double UplinkDecoder::preamble_correlation(const ConditionedTrace& ct,
                                           std::size_t stream,
                                           TimeUs start_us) const {
  const auto slots = bin_slots(ct, stream, start_us, cfg_.bit_duration_us,
                               cfg_.preamble.size());
  std::size_t filled = 0;
  double corr = 0.0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].count == 0) continue;
    ++filled;
    corr += slots[i].mean * (cfg_.preamble[i] ? 1.0 : -1.0);
  }
  const double need =
      cfg_.min_preamble_fill * static_cast<double>(slots.size());
  if (static_cast<double>(filled) < need || filled == 0) return 0.0;
  return corr / static_cast<double>(filled);
}

std::optional<UplinkDecoder::SyncResult> UplinkDecoder::find_frame(
    const ConditionedTrace& ct) const {
  if (ct.num_packets() == 0 || ct.num_streams() == 0) return std::nullopt;

  const TimeUs t0 = ct.timestamps.front();
  const TimeUs t1 = ct.timestamps.back();
  TimeUs from = cfg_.search_from.value_or(t0);
  TimeUs to = cfg_.search_to.value_or(t1 - cfg_.frame_duration_us());
  from = std::max(from, t0 - cfg_.bit_duration_us);
  to = std::max(to, from);
  const TimeUs step =
      cfg_.sync_step_us > 0 ? cfg_.sync_step_us : cfg_.bit_duration_us / 4;

  const std::size_t g =
      std::min(cfg_.num_good_streams, ct.num_streams());

  std::optional<SyncResult> best;
  std::vector<double> corrs(ct.num_streams());
  std::vector<std::size_t> order(ct.num_streams());
  for (TimeUs tau = from; tau <= to; tau += std::max<TimeUs>(step, 1)) {
    for (std::size_t s = 0; s < ct.num_streams(); ++s) {
      corrs[s] = preamble_correlation(ct, s, tau);
    }
    for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(g),
                      order.end(), [&corrs](std::size_t a, std::size_t b) {
                        return std::abs(corrs[a]) > std::abs(corrs[b]);
                      });
    double score = 0.0;
    for (std::size_t i = 0; i < g; ++i) score += std::abs(corrs[order[i]]);
    score /= static_cast<double>(g);
    if (!best || score > best->score) {
      SyncResult r;
      r.start = tau;
      r.score = score;
      r.streams.assign(order.begin(), order.begin() + static_cast<long>(g));
      r.polarity.reserve(g);
      for (std::size_t i = 0; i < g; ++i) {
        r.polarity.push_back(corrs[order[i]] >= 0.0 ? 1.0 : -1.0);
      }
      best = std::move(r);
    }
  }
  if (best && best->score <= cfg_.sync_threshold) return std::nullopt;
  return best;
}

double UplinkDecoder::preamble_noise_variance(const ConditionedTrace& ct,
                                              std::size_t stream,
                                              double polarity,
                                              TimeUs start_us) const {
  WB_REQUIRE(stream < ct.num_streams(), "stream index out of range");
  const auto& ts = ct.timestamps;
  const auto& xs = ct.streams[stream];
  const TimeUs end = start_us + static_cast<TimeUs>(cfg_.preamble.size()) *
                                    cfg_.bit_duration_us;
  double sum = 0.0, sum2 = 0.0;
  std::size_t n = 0;
  for (std::size_t k = lower_index(ts, start_us);
       k < ts.size() && ts[k] < end; ++k) {
    const auto bit = static_cast<std::size_t>((ts[k] - start_us) /
                                              cfg_.bit_duration_us);
    const double expected = cfg_.preamble[bit] ? 1.0 : -1.0;
    const double r = polarity * xs[k] - expected;
    sum += r;
    sum2 += r * r;
    ++n;
  }
  if (n < 2) return 1.0;  // no information: neutral weight
  const double mean = sum / static_cast<double>(n);
  const double var =
      (sum2 - static_cast<double>(n) * mean * mean) /
      static_cast<double>(n - 1);
  // Quantised measurements can produce a numerically zero variance; floor
  // it so 1/sigma^2 weights stay finite.
  const double floored = std::max(var, 1e-6);
  WB_ENSURE(floored > 0.0);
  return floored;
}

UplinkDecodeResult UplinkDecoder::decode(
    const wifi::CaptureTrace& trace) const {
  return decode_conditioned(
      condition(trace, cfg_.source, cfg_.movavg_window_us));
}

UplinkDecodeResult UplinkDecoder::decode_conditioned(
    const ConditionedTrace& ct) const {
  obs::ScopedTimer timer("reader.uplink.decode_wall_us");
  auto* m = obs::metrics();
  if (m != nullptr) m->counter("reader.uplink.decodes_total").add(1);

  UplinkDecodeResult res;
  const auto sync = find_frame(ct);
  if (!sync) return res;

  res.found = true;
  res.start_us = sync->start;
  res.sync_score = sync->score;
  res.streams = sync->streams;
  res.polarity = sync->polarity;

  if (m != nullptr) {
    m->counter("reader.uplink.sync_found_total").add(1);
    m->gauge("reader.uplink.sync_score_ratio").set(sync->score);
    m->gauge("reader.uplink.streams_selected_count")
        .set(static_cast<double>(sync->streams.size()));
  }

  // MRC weights from preamble-estimated noise variance (§3.2 step 2).
  res.weights.reserve(res.streams.size());
  for (std::size_t i = 0; i < res.streams.size(); ++i) {
    const double var = preamble_noise_variance(
        ct, res.streams[i], res.polarity[i], sync->start);
    WB_REQUIRE(var > 0.0, "MRC weight 1/sigma^2 needs a positive variance");
    res.weights.push_back(1.0 / var);
  }
  if (m != nullptr && res.weights.size() > 1) {
    // Dispersion of the MRC weights: max/min per decode. Near 1 means the
    // selected streams are equally trustworthy; large means one stream
    // dominates the combination.
    const auto [lo, hi] =
        std::minmax_element(res.weights.begin(), res.weights.end());
    if (*lo > 0.0) {
      m->histogram("reader.uplink.mrc_weight_ratio").record(*hi / *lo);
    }
  }

  // Combined signal y_k over the whole frame interval.
  const auto& ts = ct.timestamps;
  const TimeUs frame_end = sync->start + cfg_.frame_duration_us();
  const std::size_t k0 = lower_index(ts, sync->start);
  std::vector<double> y;
  std::vector<TimeUs> yt;
  double wsum = 0.0;
  for (double w : res.weights) wsum += w;
  if (wsum <= 0.0) wsum = 1.0;
  for (std::size_t k = k0; k < ts.size() && ts[k] < frame_end; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < res.streams.size(); ++i) {
      acc += res.weights[i] * res.polarity[i] * ct.streams[res.streams[i]][k];
    }
    y.push_back(acc / wsum);
    yt.push_back(ts[k]);
  }
  res.packets_used = y.size();

  // Hysteresis thresholds from the combined signal's own statistics
  // (§3.2 step 3: mu +- f(sigma)).
  const double mu = mean(y);
  const double sd = stddev(y);
  const double th1 = mu + cfg_.hysteresis_sigma * sd;
  const double th0 = mu - cfg_.hysteresis_sigma * sd;
  WB_INVARIANT(th0 <= th1, "hysteresis thresholds must be ordered");

  // Per-bit majority vote over timestamp-binned packets.
  const TimeUs payload_start =
      sync->start + static_cast<TimeUs>(cfg_.preamble.size()) *
                        cfg_.bit_duration_us;
  res.payload.assign(cfg_.payload_bits, 0);
  res.confidence.assign(cfg_.payload_bits, 0.0);
  std::vector<int> votes_one(cfg_.payload_bits, 0);
  std::vector<int> votes_zero(cfg_.payload_bits, 0);
  std::vector<double> slot_sum(cfg_.payload_bits, 0.0);
  std::vector<int> slot_n(cfg_.payload_bits, 0);
  for (std::size_t k = 0; k < y.size(); ++k) {
    if (yt[k] < payload_start) continue;
    const auto bit = static_cast<std::size_t>((yt[k] - payload_start) /
                                              cfg_.bit_duration_us);
    if (bit >= cfg_.payload_bits) break;
    if (y[k] > th1) ++votes_one[bit];
    else if (y[k] < th0) ++votes_zero[bit];
    slot_sum[bit] += y[k];
    ++slot_n[bit];
  }
  for (std::size_t b = 0; b < cfg_.payload_bits; ++b) {
    const int total = votes_one[b] + votes_zero[b];
    if (votes_one[b] != votes_zero[b]) {
      res.payload[b] = votes_one[b] > votes_zero[b] ? 1 : 0;
      res.confidence[b] =
          total > 0 ? std::abs(votes_one[b] - votes_zero[b]) /
                          static_cast<double>(total)
                    : 0.0;
    } else {
      // All packets abstained (hysteresis band) or tie: fall back to the
      // sign of the slot mean against mu.
      const double slot_mean =
          slot_n[b] > 0 ? slot_sum[b] / static_cast<double>(slot_n[b]) : mu;
      res.payload[b] = slot_mean > mu ? 1 : 0;
      res.confidence[b] = 0.0;
    }
  }
  if (m != nullptr) {
    m->counter("reader.uplink.packets_used_total").add(res.packets_used);
    m->counter("reader.uplink.bits_decoded_total").add(res.payload.size());
  }
  if (auto* tr = obs::tracer()) {
    tr->complete(tr->lane("reader"), "uplink_frame", "reader",
                 res.start_us,
                 static_cast<TimeUs>(cfg_.frame_duration_us()),
                 {{"sync_score", res.sync_score},
                  {"packets_used",
                   static_cast<double>(res.packets_used)}});
  }
  return res;
}

UplinkDecoderConfig rssi_decoder_config(const UplinkDecoderConfig& base) {
  UplinkDecoderConfig cfg = base;
  cfg.source = MeasurementSource::kRssi;
  cfg.num_good_streams = 1;  // best antenna only (§3.3)
  return cfg;
}

}  // namespace wb::reader
