// Multi-helper uplink decoding (paper §5): "the Wi-Fi reader can leverage
// transmissions from all Wi-Fi devices in the network and combine the
// channel information across all of them to achieve a high data rate in a
// busy network."
//
// Packets from different transmitters traverse *different* direct
// channels, so their CSI baselines are unrelated and cannot be mixed in
// one conditioning pass. The reader therefore splits the capture by
// transmitter, runs the full single-helper pipeline on each sub-trace,
// and fuses the per-source decodes bit-by-bit with confidence-weighted
// voting — the same majority principle the per-packet decoder already
// uses, lifted one level up.
#pragma once

#include <vector>

#include "reader/uplink_decoder.h"

namespace wb::reader {

struct MultiHelperResult {
  bool found = false;              ///< at least one source synced
  BitVec payload;                  ///< fused payload bits
  std::vector<std::uint32_t> sources_used;  ///< transmitters that synced
  std::vector<UplinkDecodeResult> per_source;
  std::vector<double> fused_confidence;     ///< per bit
};

class MultiHelperDecoder {
 public:
  /// `cfg` describes the frame exactly as for UplinkDecoder; it is applied
  /// to every per-source sub-trace.
  explicit MultiHelperDecoder(UplinkDecoderConfig cfg);

  /// Split by CaptureRecord::source, decode each sub-trace with at least
  /// `min_packets` records, and fuse.
  MultiHelperResult decode(const wifi::CaptureTrace& trace,
                           std::size_t min_packets = 50) const;

  const UplinkDecoderConfig& config() const { return cfg_; }

 private:
  UplinkDecoderConfig cfg_;
};

}  // namespace wb::reader
