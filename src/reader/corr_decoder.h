// Long-range uplink decoding via code correlation (paper §3.4).
//
// Beyond ~65 cm the two reflection states no longer separate in the raw
// channel values (Fig 6), so the tag represents each frame bit with one of
// two orthogonal L-chip codes and the reader correlates: an L-chip
// correlation buys an SNR gain proportional to L, at the cost of an
// L-times-longer bit. The tag-side cost is zero — it still just toggles a
// switch (Modulator's coded mode).
//
// The decoder correlates each stream's chip-slot means against the two
// codes, "picks the Wi-Fi sub-channels that provide the maximum
// correlation peaks", and outputs the bit whose code correlates stronger,
// combining the selected streams weighted by their preamble correlation.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "obs/forensics.h"
#include "reader/conditioning.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/codes.h"
#include "util/units.h"
#include "wifi/capture.h"

namespace wb::reader {

struct CodedDecoderConfig {
  MeasurementSource source = MeasurementSource::kCsi;

  /// The orthogonal code pair; its length L is the "correlation length".
  OrthogonalCodePair codes = make_orthogonal_pair(20);

  /// Frame preamble bits (coded like every other bit).
  BitVec preamble = barker13();

  std::size_t payload_bits = 32;

  /// Duration of one chip on air.
  TimeUs chip_duration_us{10'000};

  TimeUs movavg_window_us{400'000};

  std::size_t num_good_streams = 10;

  /// Known frame start (skips the sync search; the paper's range
  /// experiments are query-synchronised). When unset the decoder slides
  /// the coded preamble over the trace.
  std::optional<TimeUs> known_start;

  /// Sync search window and step (used when known_start is unset). When
  /// both ends are set, `to` must not precede `from` — the constructor
  /// rejects an inverted window instead of silently collapsing it.
  std::optional<TimeUs> search_from;
  std::optional<TimeUs> search_to;
  TimeUs sync_step_us{0};  ///< 0 = chip_duration/2

  double min_fill = 0.5;  ///< min fraction of filled chip slots

  /// Conditioned measurements are clamped to +-clip_sigma before
  /// correlating. The plain decoder's per-packet majority voting caps any
  /// one packet at one vote, but correlation is linear: a single spurious
  /// NIC snapshot (which hits every stream at once) would otherwise pass
  /// straight through and can flip a whole bit. Signal lives at +-1, so
  /// clamping at 3 costs nothing.
  double clip_sigma = 3.0;

  std::size_t chips_per_bit() const { return codes.length(); }
  std::size_t frame_bits() const { return preamble.size() + payload_bits; }
  std::size_t frame_chips() const {
    return frame_bits() * chips_per_bit();
  }
  TimeUs frame_duration_us() const {
    return chip_duration_us * static_cast<std::int64_t>(frame_chips());
  }
};

struct CodedDecodeResult {
  bool found = false;
  TimeUs start_us{0};
  double sync_score = 0.0;
  BitVec payload;
  std::vector<std::size_t> streams;
  std::vector<double> polarity;
  std::vector<double> weights;
  std::vector<double> margin;  ///< per bit: |corr1-corr0| combined
  /// Fraction of samples the winsoriser clamped (0 when clipping is off).
  double clipped_fraction = 0.0;
  /// Why the attempt failed; engaged exactly when !found.
  std::optional<obs::DropReason> drop_reason;
};

class CodedUplinkDecoder {
 public:
  explicit CodedUplinkDecoder(CodedDecoderConfig cfg);

  CodedDecodeResult decode(const wifi::CaptureTrace& trace) const;
  CodedDecodeResult decode_conditioned(const ConditionedTrace& ct) const;

  // ---- allocation-free variants (DESIGN.md §10) ----
  // Bit-identical to the allocating calls; the winsorised trace copy and
  // the slot-binning scratch live in `ws`, results reuse `out`'s vectors.

  WB_REALTIME void decode_into(const wifi::CaptureTrace& trace,
                               DecodeWorkspace& ws,
                               CodedDecodeResult& out) const;
  WB_REALTIME void decode_conditioned_into(const ConditionedTrace& ct,
                                           DecodeWorkspace& ws,
                                           CodedDecodeResult& out) const;

  /// Batch decode (DESIGN.md §15): every trace through one workspace;
  /// `out` is resized to traces.size() and its entries reused, so a
  /// warmed-up batch is allocation-free. Bit-identical to calling
  /// decode_into per trace.
  WB_REALTIME void decode_batch_into(std::span<const wifi::CaptureTrace> traces,
                                     DecodeWorkspace& ws,
                                     std::vector<CodedDecodeResult>& out) const;

  /// Per-chip-normalised correlation of a stream against the *coded
  /// preamble* at a candidate start (signed; 0 when under-filled).
  double preamble_correlation(const ConditionedTrace& ct, std::size_t stream,
                              TimeUs start_us) const;

  /// Workspace variant (slot binning scratch in `ws.slots`).
  double preamble_correlation(const ConditionedTrace& ct, std::size_t stream,
                              TimeUs start_us, DecodeWorkspace& ws) const;

  const CodedDecoderConfig& config() const { return cfg_; }

 private:
  CodedDecoderConfig cfg_;
  std::vector<double> preamble_chips_bipolar_;  ///< coded preamble template
  std::vector<double> code_diff_bipolar_;       ///< bip(one)-bip(zero), L
};

}  // namespace wb::reader
