#include "reader/downlink_encoder.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace wb::reader {

DownlinkEncoder::DownlinkEncoder(DownlinkEncoderConfig cfg) : cfg_(cfg) {
  WB_REQUIRE(cfg_.slot_us >= wifi::kMinPacketUs,
             "802.11 cannot form packets shorter than ~40 us");
  WB_REQUIRE(cfg_.bits_per_chunk() > 0);
}

DownlinkTransmission DownlinkEncoder::encode(const BitVec& message,
                                             TimeUs start_us) const {
  WB_REQUIRE(is_binary(message), "downlink payload must be raw bits");
  DownlinkTransmission tx;
  tx.start_us = start_us;

  std::uint64_t pkt_id = 0;
  std::size_t sent = 0;
  TimeUs t = start_us;
  while (sent < message.size()) {
    const std::size_t chunk_bits =
        std::min(message.size() - sent, cfg_.bits_per_chunk());
    const TimeUs chunk_air =
        cfg_.cts_duration_us + cfg_.sifs_us +
        cfg_.slot_us * static_cast<std::int64_t>(chunk_bits);

    // CTS_to_SELF reserving the chunk.
    wifi::WifiPacket cts;
    cts.id = pkt_id++;
    cts.source = cfg_.reader_station_id;
    cts.kind = wifi::FrameKind::kCtsToSelf;
    cts.start_us = t;
    cts.duration_us = cfg_.cts_duration_us;
    cts.rate_mbps = 24.0;
    cts.size_bytes = 14;
    cts.nav_us = chunk_air - cfg_.cts_duration_us;
    tx.packets.push_back(cts);

    TimeUs slot_t = t + cfg_.cts_duration_us + cfg_.sifs_us;
    for (std::size_t i = 0; i < chunk_bits; ++i, slot_t += cfg_.slot_us) {
      const std::uint8_t bit = message[sent + i];
      tx.slots.push_back(DownlinkSlot{slot_t, bit});
      if (bit != 0) {
        wifi::WifiPacket p;
        p.id = pkt_id++;
        p.source = cfg_.reader_station_id;
        p.kind = wifi::FrameKind::kData;
        p.start_us = slot_t;
        p.duration_us = cfg_.slot_us;
        p.rate_mbps = 54.0;
        // Bytes that fit the slot at 54 Mbps minus PLCP overhead.
        const double payload_us =
            std::max<double>(
                0.0, static_cast<double>(cfg_.slot_us.ticks()) - 20.0);
        p.size_bytes = static_cast<std::uint32_t>(payload_us * 54.0 / 8.0);
        tx.packets.push_back(p);
      }
    }
    sent += chunk_bits;
    t = slot_t + cfg_.inter_chunk_gap_us;
  }
  tx.end_us = tx.slots.empty()
                  ? start_us
                  : tx.slots.back().start_us + cfg_.slot_us;
  if (auto* m = obs::metrics()) {
    m->counter("reader.downlink.messages_encoded_total").add(1);
    m->counter("reader.downlink.slots_encoded_total").add(tx.slots.size());
    m->counter("reader.downlink.packets_encoded_total")
        .add(tx.packets.size());
  }
  if (auto* tr = obs::tracer()) {
    tr->complete(tr->lane("reader"), "downlink_tx", "reader", tx.start_us,
                 tx.end_us - tx.start_us,
                 {{"slots", static_cast<double>(tx.slots.size())},
                  {"packets", static_cast<double>(tx.packets.size())}});
  }
  return tx;
}

}  // namespace wb::reader
