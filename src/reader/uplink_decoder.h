// The Wi-Fi Backscatter uplink decoder (paper §3.2-§3.3) — the core of the
// paper's contribution. Runs entirely on measurements a commodity NIC
// exports (per-packet CSI or RSSI); never sees channel ground truth.
//
// Pipeline:
//   1. conditioning (see conditioning.h): drift removal + normalisation;
//   2. frame sync + stream selection: slide the known tag preamble (a
//      13-bit Barker code) across every stream, bin measurements into bit
//      slots by packet timestamp, and find the start time where the
//      summed top-G |correlation| peaks. Streams are ranked by
//      |correlation| at the chosen start; the correlation *sign* gives
//      each stream's polarity (a reflection can raise or lower |H|
//      depending on the multipath phase, so streams can be inverted);
//   3. per-stream noise-variance estimation over the preamble slots;
//   4. maximum-ratio combining: weighted sum with weights 1/sigma^2
//      (paper's CSI_weighted);
//   5. bit decisions: per-packet hysteresis thresholding at mu +- h*sigma
//      followed by majority voting over the packets binned into each bit
//      slot ("use the timestamp ... to accurately group Wi-Fi packets
//      belonging to the same bit transmission").
//
// RSSI decoding (§3.3) is the same machine with the three RSSI streams
// and G=1 (best antenna only), exactly as the paper describes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "obs/forensics.h"
#include "reader/conditioning.h"
#include "reader/decode_workspace.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/codes.h"
#include "util/units.h"
#include "wifi/capture.h"

namespace wb::reader {

struct UplinkDecoderConfig {
  /// Measurement the decoder runs on.
  MeasurementSource source = MeasurementSource::kCsi;

  /// The tag's frame preamble (known a priori, §3.2 step 1).
  BitVec preamble = barker13();

  /// Number of payload bits following the preamble.
  std::size_t payload_bits = 77;

  /// Tag bit duration (the reader assigned it in its query, §5).
  TimeUs bit_duration_us{10'000};

  /// Moving-average window for conditioning (§3.2: 400 ms).
  TimeUs movavg_window_us{400'000};

  /// How many "good" streams to combine (§3.2: top ten).
  std::size_t num_good_streams = 10;

  /// Hysteresis half-width in units of sigma of the combined signal.
  /// The ablation bench shows timestamp-binned majority voting already
  /// absorbs the NIC's spurious snapshots, so wide hysteresis only costs
  /// votes; a narrow band is kept for fidelity to §3.2.
  double hysteresis_sigma = 0.25;

  /// Frame-start search grid step; 0 = bit_duration / 4.
  TimeUs sync_step_us{0};

  /// Optional restriction of the frame-start search to [from, to]. When
  /// unset the whole trace is searched. Experiments that know roughly when
  /// the tag was queried narrow this for speed; the decoder still
  /// fine-syncs within the window. When both ends are set, `to` must not
  /// precede `from` — the constructor rejects an inverted window instead
  /// of silently collapsing it to a single probe offset.
  std::optional<TimeUs> search_from;
  std::optional<TimeUs> search_to;

  /// Minimum fraction of preamble slots that must contain at least one
  /// packet for a sync candidate to be considered.
  double min_preamble_fill = 0.6;

  /// Sync acceptance threshold: mean per-bit |correlation| of the best
  /// stream set must exceed this (normalised units; noise gives ~0.2).
  double sync_threshold = 0.0;

  std::size_t frame_bits() const {
    return preamble.size() + payload_bits;
  }
  TimeUs frame_duration_us() const {
    return bit_duration_us * static_cast<std::int64_t>(frame_bits());
  }
};

/// Everything the decoder reports about one frame reception attempt.
struct UplinkDecodeResult {
  bool found = false;           ///< sync succeeded
  TimeUs start_us{0};          ///< estimated frame start
  double sync_score = 0.0;      ///< mean |corr| over the selected streams
  BitVec payload;               ///< decoded payload bits
  std::vector<std::size_t> streams;  ///< selected stream indices (ranked)
  std::vector<double> polarity;      ///< +1/-1 per selected stream
  std::vector<double> weights;       ///< MRC weights per selected stream
  std::vector<double> confidence;    ///< per payload bit, |vote margin| 0..1
  std::size_t packets_used = 0;      ///< packets in the frame interval
  /// Why the attempt failed; engaged exactly when !found.
  std::optional<obs::DropReason> drop_reason;
};

class UplinkDecoder {
 public:
  explicit UplinkDecoder(UplinkDecoderConfig cfg);

  /// Full pipeline from a raw capture trace.
  UplinkDecodeResult decode(const wifi::CaptureTrace& trace) const;

  /// Pipeline from an already-conditioned trace (lets experiments reuse
  /// conditioning across decoder variants).
  UplinkDecodeResult decode_conditioned(const ConditionedTrace& ct) const;

  // ---- allocation-free variants (DESIGN.md §10) ----
  // Same pipeline, bit-identical outputs; scratch lives in `ws` and the
  // result reuses `out`'s vectors, so a warm workspace + reused result
  // make a decode allocation-free.

  /// Full pipeline; conditioning output is kept in `ws.conditioned`.
  WB_REALTIME void decode_into(const wifi::CaptureTrace& trace,
                               DecodeWorkspace& ws,
                               UplinkDecodeResult& out) const;

  /// Pipeline from an already-conditioned trace.
  WB_REALTIME void decode_conditioned_into(const ConditionedTrace& ct,
                                           DecodeWorkspace& ws,
                                           UplinkDecodeResult& out) const;

  /// Batch decode (DESIGN.md §15): run every trace through this decoder,
  /// reusing one workspace across the whole span; `out` is resized to
  /// traces.size() with each entry reused like the single-trace overload,
  /// so a warmed-up batch is allocation-free. Bit-identical to calling
  /// decode_into per trace.
  WB_REALTIME void decode_batch_into(std::span<const wifi::CaptureTrace> traces,
                                     DecodeWorkspace& ws,
                                     std::vector<UplinkDecodeResult>& out) const;

  /// Replace the frame-start search window (used by the streaming wrapper,
  /// which slides the window forward between scans on one decoder
  /// instance). nullopt = search the whole trace; a window with both ends
  /// set must be coherent (to >= from), like at construction.
  void set_search_window(std::optional<TimeUs> from_us,
                         std::optional<TimeUs> to_us) {
    WB_REQUIRE(!(from_us && to_us) || *to_us >= *from_us,
               "search window must satisfy search_to >= search_from");
    cfg_.search_from = from_us;
    cfg_.search_to = to_us;
  }

  // ---- exposed internals (tested and reused by the ablation benches) ----

  /// Mean of stream `s` within [start + i*T, start + (i+1)*T) for each of
  /// `nslots` slots. count==0 slots report mean 0.
  using SlotStat = reader::SlotStat;
  static std::vector<SlotStat> bin_slots(const ConditionedTrace& ct,
                                         std::size_t stream, TimeUs start_us,
                                         TimeUs slot_us, std::size_t nslots);

  /// bin_slots writing into a caller-owned buffer (resized to `nslots`,
  /// capacity reused across calls).
  static void bin_slots_into(const ConditionedTrace& ct, std::size_t stream,
                             TimeUs start_us, TimeUs slot_us,
                             std::size_t nslots, std::vector<SlotStat>& out);

  // Stream-batched binning (DESIGN.md §15). The timestamp→slot map and the
  // per-slot packet counts depend only on the shared timestamps, so
  // bin_window_into computes them once per candidate window (into
  // ws.bin_slot_of / ws.bin_count / ws.bin_first / ws.bin_nslots /
  // ws.bin_filled); bin_stream_sums_into then accumulates one stream's
  // per-slot sums (ws.bin_sums) with a single contiguous pass. Per slot,
  // sum/count reproduces bin_slots_into's mean bit-for-bit (same packet
  // accumulation order, same single division).

  /// Prepare the shared slot map for [start, start + nslots*slot_us).
  static void bin_window_into(const ConditionedTrace& ct, TimeUs start_us,
                              TimeUs slot_us, std::size_t nslots,
                              DecodeWorkspace& ws);

  /// Per-slot sums of `stream` over the window prepared by the last
  /// bin_window_into on `ws`.
  static void bin_stream_sums_into(const ConditionedTrace& ct,
                                   std::size_t stream, DecodeWorkspace& ws);

  /// Signed per-bit-normalised preamble correlation of one stream at a
  /// candidate frame start; 0 if too few preamble slots are filled.
  double preamble_correlation(const ConditionedTrace& ct, std::size_t stream,
                              TimeUs start_us) const;

  /// Workspace variant (slot binning scratch in `ws.slots`).
  double preamble_correlation(const ConditionedTrace& ct, std::size_t stream,
                              TimeUs start_us, DecodeWorkspace& ws) const;

  struct SyncResult {
    TimeUs start{0};
    double score = 0.0;
    std::vector<std::size_t> streams;  ///< ranked by |corr|, size <= G
    std::vector<double> polarity;      ///< sign of corr per stream
  };
  /// Search the configured window for the frame start.
  std::optional<SyncResult> find_frame(const ConditionedTrace& ct) const;

  /// Workspace variant: returns true when a frame start cleared the sync
  /// threshold, leaving start/score in the out-params and the selected
  /// streams/polarities in `ws.best_streams` / `ws.best_polarity`.
  bool find_frame(const ConditionedTrace& ct, DecodeWorkspace& ws,
                  TimeUs& start_us, double& score) const;

  /// Diagnosing variant: on failure, `failure` names the drop reason —
  /// kEmptyTrace (no packets/streams reached sync), kNoPreamble (no
  /// candidate window ever correlated), or kLowSnr (best correlation
  /// positive but at/below the sync threshold).
  bool find_frame(const ConditionedTrace& ct, DecodeWorkspace& ws,
                  TimeUs& start_us, double& score,
                  obs::DropReason& failure) const;

  /// Noise variance of one stream over the preamble slots, given its
  /// polarity (variance of the residual against the known +-1 preamble).
  double preamble_noise_variance(const ConditionedTrace& ct,
                                 std::size_t stream, double polarity,
                                 TimeUs start_us) const;

  const UplinkDecoderConfig& config() const { return cfg_; }

 private:
  UplinkDecoderConfig cfg_;
};

/// Convenience: a decoder configured per §3.3 for RSSI (3 streams, best
/// antenna only).
UplinkDecoderConfig rssi_decoder_config(const UplinkDecoderConfig& base);

}  // namespace wb::reader
