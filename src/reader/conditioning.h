// Signal conditioning (paper §3.2, step 1): turn raw per-packet channel
// measurements into zero-mean, normalised series the rest of the decoder
// can threshold.
//
//   1. subtract a 400 ms moving average (computed over *time*, not packet
//      count — the medium is bursty) to remove environmental drift;
//   2. normalise by the mean absolute value so a tag 'one' maps near +1
//      and a 'zero' near -1 without knowing the transmitted bits.
//
// The same conditioning applies to CSI streams (90 of them: 30
// sub-channels x 3 antennas) and RSSI streams (one per antenna); the
// decoder treats every stream identically after this stage.
#pragma once

#include <span>
#include <vector>

#include "util/units.h"
#include "wifi/capture.h"

namespace wb::reader {

struct DecodeWorkspace;  // decode_workspace.h

/// Conditioned measurement series: one value per captured packet per
/// stream, plus the shared packet timestamps.
struct ConditionedTrace {
  std::vector<TimeUs> timestamps;            ///< per packet
  std::vector<std::vector<double>> streams;  ///< [stream][packet]

  std::size_t num_packets() const { return timestamps.size(); }
  std::size_t num_streams() const { return streams.size(); }
};

/// Which NIC measurement feeds the decoder.
enum class MeasurementSource {
  kCsi,   ///< 30 sub-channels x 3 antennas (records without CSI skipped)
  kRssi,  ///< per-antenna RSSI in dB
};

/// Condition a capture trace: moving-average removal (window in
/// microseconds, paper uses 400 ms) followed by mean-absolute-value
/// normalisation per stream.
ConditionedTrace condition(const wifi::CaptureTrace& trace,
                           MeasurementSource source,
                           TimeUs movavg_window_us = TimeUs{400'000});

/// Allocation-free variant of condition(): raw collection and the
/// moving-average scratch live in `ws` (decode_workspace.h), the result is
/// written into `out` reusing its capacity. Bit-identical to condition().
void condition_into(const wifi::CaptureTrace& trace, MeasurementSource source,
                    TimeUs movavg_window_us, DecodeWorkspace& ws,
                    ConditionedTrace& out);

/// The moving-average-removal stage alone (exposed for tests and the
/// ablation bench): y_k = x_k - mean{x_j : t_j in (t_k - window, t_k]}.
std::vector<double> remove_time_moving_average(
    const std::vector<TimeUs>& ts, const std::vector<double>& xs,
    TimeUs window_us);

/// Span-out variant of remove_time_moving_average: `out.size()` must equal
/// `xs.size()`; `out` must not alias `xs` (the sliding window re-reads
/// samples behind the cursor). Bit-identical to the allocating wrapper.
void remove_time_moving_average(std::span<const TimeUs> ts,
                                std::span<const double> xs, TimeUs window_us,
                                std::span<double> out);

}  // namespace wb::reader
