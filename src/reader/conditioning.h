// Signal conditioning (paper §3.2, step 1): turn raw per-packet channel
// measurements into zero-mean, normalised series the rest of the decoder
// can threshold.
//
//   1. subtract a 400 ms moving average (computed over *time*, not packet
//      count — the medium is bursty) to remove environmental drift;
//   2. normalise by the mean absolute value so a tag 'one' maps near +1
//      and a 'zero' near -1 without knowing the transmitted bits.
//
// The same conditioning applies to CSI streams (90 of them: 30
// sub-channels x 3 antennas) and RSSI streams (one per antenna); the
// decoder treats every stream identically after this stage.
#pragma once

#include <span>
#include <vector>

#include "util/check.h"
#include "util/units.h"
#include "wifi/capture.h"

namespace wb::reader {

struct DecodeWorkspace;  // decode_workspace.h

/// Conditioned measurement series: one value per captured packet per
/// stream, plus the shared packet timestamps.
struct ConditionedTrace {
  std::vector<TimeUs> timestamps;            ///< per packet
  std::vector<std::vector<double>> streams;  ///< [stream][packet]

  std::size_t num_packets() const { return timestamps.size(); }
  std::size_t num_streams() const { return streams.size(); }
};

/// Which NIC measurement feeds the decoder.
enum class MeasurementSource {
  kCsi,   ///< 30 sub-channels x 3 antennas (records without CSI skipped)
  kRssi,  ///< per-antenna RSSI in dB
};

/// Condition a capture trace: moving-average removal (window in
/// microseconds, paper uses 400 ms) followed by mean-absolute-value
/// normalisation per stream.
ConditionedTrace condition(const wifi::CaptureTrace& trace,
                           MeasurementSource source,
                           TimeUs movavg_window_us = TimeUs{400'000});

/// Allocation-free variant of condition(): raw collection and the
/// moving-average scratch live in `ws` (decode_workspace.h), the result is
/// written into `out` reusing its capacity. Bit-identical to condition().
WB_REALTIME void condition_into(const wifi::CaptureTrace& trace,
                                MeasurementSource source,
                                TimeUs movavg_window_us, DecodeWorkspace& ws,
                                ConditionedTrace& out);

/// The moving-average-removal stage alone (exposed for tests and the
/// ablation bench): y_k = x_k - mean{x_j : t_j in (t_k - window, t_k]}.
std::vector<double> remove_time_moving_average(
    const std::vector<TimeUs>& ts, const std::vector<double>& xs,
    TimeUs window_us);

/// Span-out variant of remove_time_moving_average: `out.size()` must equal
/// `xs.size()`; `out` must not alias `xs` (the sliding window re-reads
/// samples behind the cursor). Bit-identical to the allocating wrapper.
void remove_time_moving_average(std::span<const TimeUs> ts,
                                std::span<const double> xs, TimeUs window_us,
                                std::span<double> out);

/// Stream-batched variant (DESIGN.md §15): `rows` is a row-major
/// [packet][lane] matrix — ts.size() rows of `stride` lanes, `stride` a
/// multiple of simd::kLanes — and every lane column is centered exactly as
/// the span variant centers one series: the [t_k - w/2, t_k + w/2] window
/// cursors are shared across columns (the timestamps are shared), the
/// per-column window sums live in `sum_scratch` (size `stride`) and
/// advance in the same add-tail-then-retire-head order. `out_rows` must
/// not alias `rows` (window re-reads). Bit-identical per column to the
/// span variant.
void remove_time_moving_average_rows(std::span<const TimeUs> ts,
                                     std::span<const double> rows,
                                     std::size_t stride, TimeUs window_us,
                                     std::span<double> sum_scratch,
                                     std::span<double> out_rows);

/// As above, plus wb::mad_rows' divisor pass fused into the output sweep:
/// each centered row accumulates |out| per column as it is written (the
/// same row order mad_rows reads in), and `mad_out` (size `stride`) gets
/// the same fixed-up divisors mad_rows(out_rows, ...) would produce —
/// bit-identical to calling the two kernels in sequence, one matrix read
/// cheaper. `mad_out` must not alias the output or the window sums.
void remove_time_moving_average_rows(std::span<const TimeUs> ts,
                                     std::span<const double> rows,
                                     std::size_t stride, TimeUs window_us,
                                     std::span<double> sum_scratch,
                                     std::span<double> out_rows,
                                     std::span<double> mad_out);

}  // namespace wb::reader
