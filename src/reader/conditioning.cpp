#include "reader/conditioning.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "util/check.h"

#include "reader/decode_workspace.h"
#include "util/dsp.h"
#include "util/simd.h"

namespace wb::reader {

void remove_time_moving_average(std::span<const TimeUs> ts,
                                std::span<const double> xs, TimeUs window_us,
                                std::span<double> out) {
  WB_REQUIRE(ts.size() == xs.size(),
             "one measurement per timestamp is required");
  WB_REQUIRE(out.size() == xs.size(), "output must cover every sample");
  WB_REQUIRE(!detail::spans_overlap(xs.data(), xs.size(), out.data(),
                                    out.size()),
             "out must not alias xs: the sliding window re-reads samples "
             "behind the cursor");
  WB_REQUIRE(window_us > TimeUs{},
             "moving-average window must be positive");
  WB_REQUIRE(std::is_sorted(ts.begin(), ts.end()),
             "capture timestamps must be non-decreasing");
  // Centered window. The paper's receiver subtracts a trailing 400 ms
  // average online; decoding offline we can center the same window, which
  // removes identical drift but avoids the trailing window's
  // data-dependent baseline creep (a trailing average over a frame edge
  // contains a varying mix of modulated and quiescent samples, which can
  // flip the apparent sign of bits after locally imbalanced runs).
  const TimeUs half = window_us / 2;
  std::size_t head = 0;  // first index inside [t_k - half, t_k + half]
  std::size_t tail = 0;  // one past the last index inside
  double sum = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    while (tail < xs.size() && ts[tail] <= ts[k] + half) {
      sum += xs[tail];
      ++tail;
    }
    while (ts[head] < ts[k] - half) {
      sum -= xs[head];
      ++head;
    }
    const double mean = sum / static_cast<double>(tail - head);
    out[k] = xs[k] - mean;
  }
}

std::vector<double> remove_time_moving_average(
    const std::vector<TimeUs>& ts, const std::vector<double>& xs,
    TimeUs window_us) {
  std::vector<double> out(xs.size());
  remove_time_moving_average(std::span<const TimeUs>(ts),
                             std::span<const double>(xs), window_us, out);
  return out;
}

namespace {

// Shared body of the remove_time_moving_average_rows variants. When `mad`
// is non-null it accumulates |out| per column alongside the centering
// sweep (the fused-MAD overload); the accumulation reads each output
// value the instant it is produced, in the same row order wb::mad_rows
// would read the finished matrix, so the sums are bit-identical.
WB_SIMD_MULTIVERSION
void movavg_rows_impl(std::span<const TimeUs> ts, std::span<const double> rows,
                      std::size_t stride, TimeUs window_us,
                      std::span<double> sum_scratch,
                      std::span<double> out_rows, double* mad) {
  WB_REQUIRE(stride > 0 && stride % simd::kLanes == 0,
             "row stride must be a positive multiple of the pack width");
  WB_REQUIRE(rows.size() == ts.size() * stride,
             "rows must hold one stride-wide row per timestamp");
  WB_REQUIRE(out_rows.size() == rows.size(),
             "output must cover every sample");
  WB_REQUIRE(sum_scratch.size() == stride,
             "window-sum scratch needs one accumulator per lane column");
  WB_REQUIRE(!detail::spans_overlap(rows.data(), rows.size(),
                                    out_rows.data(), out_rows.size()),
             "out_rows must not alias rows: the sliding window re-reads "
             "samples behind the cursor");
  WB_REQUIRE(!detail::spans_overlap(sum_scratch.data(), sum_scratch.size(),
                                    out_rows.data(), out_rows.size()),
             "window-sum scratch must not alias the output");
  WB_REQUIRE(window_us > TimeUs{},
             "moving-average window must be positive");
  WB_REQUIRE(std::is_sorted(ts.begin(), ts.end()),
             "capture timestamps must be non-decreasing");
  using P = simd::dpack;
  const TimeUs half = window_us / 2;
  const std::size_t n = ts.size();
  std::size_t head = 0;  // first row inside [t_k - half, t_k + half]
  std::size_t tail = 0;  // one past the last row inside
  for (double& s : sum_scratch) s = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Same cursor advance and per-column add/retire order as the span
    // variant — the window bounds depend only on the shared timestamps,
    // which is what makes batching across columns free.
    while (tail < n && ts[tail] <= ts[k] + half) {
      const double* row = rows.data() + tail * stride;
      for (std::size_t g = 0; g < stride; g += simd::kLanes) {
        (P::load(sum_scratch.data() + g) + P::load(row + g))
            .store(sum_scratch.data() + g);
      }
      ++tail;
    }
    while (ts[head] < ts[k] - half) {
      const double* row = rows.data() + head * stride;
      for (std::size_t g = 0; g < stride; g += simd::kLanes) {
        (P::load(sum_scratch.data() + g) - P::load(row + g))
            .store(sum_scratch.data() + g);
      }
      ++head;
    }
    const P nwin = P::broadcast(static_cast<double>(tail - head));
    const double* x = rows.data() + k * stride;
    double* o = out_rows.data() + k * stride;
    if (mad != nullptr) {
      for (std::size_t g = 0; g < stride; g += simd::kLanes) {
        const P out = P::load(x + g) - P::load(sum_scratch.data() + g) / nwin;
        out.store(o + g);
        (P::load(mad + g) + P::abs(out)).store(mad + g);
      }
    } else {
      for (std::size_t g = 0; g < stride; g += simd::kLanes) {
        (P::load(x + g) - P::load(sum_scratch.data() + g) / nwin)
            .store(o + g);
      }
    }
  }
}

}  // namespace

void remove_time_moving_average_rows(std::span<const TimeUs> ts,
                                     std::span<const double> rows,
                                     std::size_t stride, TimeUs window_us,
                                     std::span<double> sum_scratch,
                                     std::span<double> out_rows) {
  movavg_rows_impl(ts, rows, stride, window_us, sum_scratch, out_rows,
                   nullptr);
}

void remove_time_moving_average_rows(std::span<const TimeUs> ts,
                                     std::span<const double> rows,
                                     std::size_t stride, TimeUs window_us,
                                     std::span<double> sum_scratch,
                                     std::span<double> out_rows,
                                     std::span<double> mad_out) {
  WB_REQUIRE(mad_out.size() == stride,
             "mad output needs one accumulator per lane column");
  WB_REQUIRE(!detail::spans_overlap(mad_out.data(), mad_out.size(),
                                    out_rows.data(), out_rows.size()),
             "mad output must not alias the output rows");
  WB_REQUIRE(!detail::spans_overlap(mad_out.data(), mad_out.size(),
                                    sum_scratch.data(), sum_scratch.size()),
             "mad output must not alias the window sums");
  for (double& m : mad_out) m = 0.0;
  movavg_rows_impl(ts, rows, stride, window_us, sum_scratch, out_rows,
                   mad_out.data());
  if (ts.empty()) {
    // No rows: every column is degenerate, same safe divisors mad_rows
    // produces on an empty matrix.
    for (double& m : mad_out) m = 1.0;
    return;
  }
  // Same divisor fixup as mad_rows: degenerate columns (mad <= 0) divide
  // by 1.0, an exact copy.
  const double n = static_cast<double>(ts.size());
  for (double& m : mad_out) {
    const double mad = m / n;
    m = mad <= 0.0 ? 1.0 : mad;
  }
}

namespace {

// Transpose the conditioned [packet][lane] rows back to the
// [stream][packet] vectors the decoders consume, dividing each column by
// its MAD on the way out — normalize_mad_rows' divide pass fused into the
// transpose, one matrix pass instead of two. Each element still sees the
// same single IEEE divide by the same mad_rows divisor, so the output is
// bit-identical to normalize-then-copy. Reads are contiguous pack loads
// (stride is padded past num_streams, so the last group may cover inert
// padding columns); writes fan each lane out to its stream vector.
WB_SIMD_MULTIVERSION
void transpose_divide_rows(const double* rows, std::size_t stride,
                           std::size_t n, const double* mad,
                           std::size_t num_streams,
                           std::vector<std::vector<double>>& streams) {
  using P = simd::dpack;
  constexpr std::size_t L = simd::kLanes;
  for (std::size_t g = 0; g < num_streams; g += L) {
    const std::size_t lanes = std::min(L, num_streams - g);
    const P d = P::load(mad + g);
    double* dst[L] = {};
    for (std::size_t l = 0; l < lanes; ++l) dst[l] = streams[g + l].data();
    std::size_t k = 0;
    if (lanes == L) {
      // L×L blocks: L pack loads down the rows, an in-register transpose,
      // L contiguous pack stores across the streams. Each element still
      // sees its one IEEE divide; only the store pattern changes.
      for (; k + L <= n; k += L) {
        P v[L];
        for (std::size_t r = 0; r < L; ++r) {
          v[r] = P::load(rows + (k + r) * stride + g) / d;
        }
        for (std::size_t l = 0; l < L; ++l) {
          P w;
          for (std::size_t r = 0; r < L; ++r) w.lane[r] = v[r].lane[l];
          w.store(dst[l] + k);
        }
      }
    }
    for (; k < n; ++k) {
      const P v = P::load(rows + k * stride + g) / d;
      for (std::size_t l = 0; l < lanes; ++l) dst[l][k] = v.lane[l];
    }
  }
}

}  // namespace

void condition_into(const wifi::CaptureTrace& trace, MeasurementSource source,
                    TimeUs movavg_window_us, DecodeWorkspace& ws,
                    ConditionedTrace& out) {
  WB_REQUIRE(movavg_window_us > TimeUs{},
             "moving-average window must be positive");
  obs::ScopedTimer timer("reader.conditioning.wall_us");

  const std::size_t num_streams = (source == MeasurementSource::kCsi)
                                      ? wifi::kNumCsiStreams
                                      : phy::kNumAntennas;

  // Collect raw series straight into preallocated SoA buffers: count the
  // usable records first, size every stream once, then write by index.
  // For CSI, records without CSI (beacons on the paper's NIC) are skipped
  // entirely; for RSSI every record counts.
  const bool want_csi = source == MeasurementSource::kCsi;
  std::size_t n = 0;
  if (want_csi) {
    for (const auto& rec : trace) n += rec.has_csi ? 1 : 0;
  } else {
    n = trace.size();
  }
  out.timestamps.resize(n);

  // Interleaved [packet][lane] rows (DESIGN.md §15): each record writes one
  // contiguous row — the order a record naturally arrives in — and the
  // batched kernels then center + normalise all stream columns per time
  // step in one pass. The stride pads up to the pack width; padding lanes
  // are zero-filled so they ride through the kernels as inert columns.
  const std::size_t stride =
      (num_streams + simd::kLanes - 1) / simd::kLanes * simd::kLanes;
  ws.raw_rows.resize(n * stride);
  ws.centered_rows.resize(n * stride);
  ws.row_sums.resize(stride);
  ws.row_mads.resize(stride);

  std::size_t idx = 0;
  for (const auto& rec : trace) {
    if (want_csi && !rec.has_csi) continue;
    out.timestamps[idx] = rec.timestamp_us;
    double* row = ws.raw_rows.data() + idx * stride;
    if (want_csi) {
      // Lane order is antenna-major (stream_index), so the record's CSI
      // matrix is copied row by row — each antenna row is contiguous.
      for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
        std::memcpy(row + a * phy::kNumSubchannels, rec.csi[a].data(),
                    phy::kNumSubchannels * sizeof(double));
      }
    } else {
      for (std::size_t s = 0; s < num_streams; ++s) {
        row[s] = rec.rssi_dbm[s];
      }
    }
    for (std::size_t s = num_streams; s < stride; ++s) row[s] = 0.0;
    ++idx;
  }
  WB_ENSURE(idx == n);

  out.streams.resize(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    out.streams[s].resize(n);
  }
  if (n > 0) {
    // Fused pipeline, bit-identical to remove_time_moving_average_rows +
    // normalize_mad_rows + a plain transpose: the MAD divisors accumulate
    // inside the centering sweep (conditioning.h) and the divide rides the
    // transpose, so the matrix crosses memory twice instead of four times.
    remove_time_moving_average_rows(
        std::span<const TimeUs>(out.timestamps),
        std::span<const double>(ws.raw_rows), stride, movavg_window_us,
        ws.row_sums, ws.centered_rows, ws.row_mads);
    transpose_divide_rows(ws.centered_rows.data(), stride, n,
                          ws.row_mads.data(), num_streams, out.streams);
  }
  if (auto* m = obs::metrics()) {
    m->counter("reader.conditioning.traces_total").add(1);
    m->counter("reader.conditioning.packets_total")
        .add(out.timestamps.size());
    m->gauge("reader.conditioning.streams_count")
        .set(static_cast<double>(num_streams));
  }
  if (auto* fx = obs::forensics()) {
    // A trace that loses every record here (e.g. beacons-only capture on
    // a CSI decoder) dies at conditioning, not downstream.
    fx->record_attempt(obs::DropStage::kConditioning);
    if (n == 0) {
      fx->record_drop(obs::DropStage::kConditioning,
                      obs::DropReason::kEmptyTrace);
    } else {
      fx->record_decode(obs::DropStage::kConditioning);
    }
  }
}

ConditionedTrace condition(const wifi::CaptureTrace& trace,
                           MeasurementSource source,
                           TimeUs movavg_window_us) {
  DecodeWorkspace ws;
  ConditionedTrace out;
  condition_into(trace, source, movavg_window_us, ws, out);
  return out;
}

}  // namespace wb::reader
