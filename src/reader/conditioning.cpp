#include "reader/conditioning.h"

#include <algorithm>
#include <cmath>

#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "util/check.h"

#include "reader/decode_workspace.h"
#include "util/dsp.h"

namespace wb::reader {

void remove_time_moving_average(std::span<const TimeUs> ts,
                                std::span<const double> xs, TimeUs window_us,
                                std::span<double> out) {
  WB_REQUIRE(ts.size() == xs.size(),
             "one measurement per timestamp is required");
  WB_REQUIRE(out.size() == xs.size(), "output must cover every sample");
  WB_REQUIRE(window_us > TimeUs{},
             "moving-average window must be positive");
  WB_REQUIRE(std::is_sorted(ts.begin(), ts.end()),
             "capture timestamps must be non-decreasing");
  // Centered window. The paper's receiver subtracts a trailing 400 ms
  // average online; decoding offline we can center the same window, which
  // removes identical drift but avoids the trailing window's
  // data-dependent baseline creep (a trailing average over a frame edge
  // contains a varying mix of modulated and quiescent samples, which can
  // flip the apparent sign of bits after locally imbalanced runs).
  const TimeUs half = window_us / 2;
  std::size_t head = 0;  // first index inside [t_k - half, t_k + half]
  std::size_t tail = 0;  // one past the last index inside
  double sum = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    while (tail < xs.size() && ts[tail] <= ts[k] + half) {
      sum += xs[tail];
      ++tail;
    }
    while (ts[head] < ts[k] - half) {
      sum -= xs[head];
      ++head;
    }
    const double mean = sum / static_cast<double>(tail - head);
    out[k] = xs[k] - mean;
  }
}

std::vector<double> remove_time_moving_average(
    const std::vector<TimeUs>& ts, const std::vector<double>& xs,
    TimeUs window_us) {
  std::vector<double> out(xs.size());
  remove_time_moving_average(std::span<const TimeUs>(ts),
                             std::span<const double>(xs), window_us, out);
  return out;
}

void condition_into(const wifi::CaptureTrace& trace, MeasurementSource source,
                    TimeUs movavg_window_us, DecodeWorkspace& ws,
                    ConditionedTrace& out) {
  WB_REQUIRE(movavg_window_us > TimeUs{},
             "moving-average window must be positive");
  obs::ScopedTimer timer("reader.conditioning.wall_us");

  const std::size_t num_streams = (source == MeasurementSource::kCsi)
                                      ? wifi::kNumCsiStreams
                                      : phy::kNumAntennas;

  // Collect raw series straight into preallocated SoA buffers: count the
  // usable records first, size every stream once, then write by index.
  // For CSI, records without CSI (beacons on the paper's NIC) are skipped
  // entirely; for RSSI every record counts.
  const bool want_csi = source == MeasurementSource::kCsi;
  std::size_t n = 0;
  if (want_csi) {
    for (const auto& rec : trace) n += rec.has_csi ? 1 : 0;
  } else {
    n = trace.size();
  }
  out.timestamps.resize(n);
  ws.raw.resize(num_streams);
  for (auto& stream : ws.raw) stream.resize(n);

  std::size_t idx = 0;
  for (const auto& rec : trace) {
    if (want_csi && !rec.has_csi) continue;
    out.timestamps[idx] = rec.timestamp_us;
    if (want_csi) {
      // Flattened stream order is antenna-major (stream_index), so the
      // record's CSI matrix can be copied row by row.
      std::size_t s = 0;
      for (std::size_t a = 0; a < phy::kNumAntennas; ++a) {
        for (std::size_t c = 0; c < phy::kNumSubchannels; ++c) {
          ws.raw[s++][idx] = rec.csi[a][c];
        }
      }
    } else {
      for (std::size_t s = 0; s < num_streams; ++s) {
        ws.raw[s][idx] = rec.rssi_dbm[s];
      }
    }
    ++idx;
  }
  WB_ENSURE(idx == n);

  out.streams.resize(num_streams);
  ws.centered.resize(n);
  for (std::size_t s = 0; s < num_streams; ++s) {
    remove_time_moving_average(std::span<const TimeUs>(out.timestamps),
                               std::span<const double>(ws.raw[s]),
                               movavg_window_us, ws.centered);
    out.streams[s].resize(n);
    normalize_mad(ws.centered, out.streams[s]);
    WB_ENSURE(out.streams[s].size() == out.timestamps.size());
  }
  if (auto* m = obs::metrics()) {
    m->counter("reader.conditioning.traces_total").add(1);
    m->counter("reader.conditioning.packets_total")
        .add(out.timestamps.size());
    m->gauge("reader.conditioning.streams_count")
        .set(static_cast<double>(num_streams));
  }
  if (auto* fx = obs::forensics()) {
    // A trace that loses every record here (e.g. beacons-only capture on
    // a CSI decoder) dies at conditioning, not downstream.
    fx->record_attempt(obs::DropStage::kConditioning);
    if (n == 0) {
      fx->record_drop(obs::DropStage::kConditioning,
                      obs::DropReason::kEmptyTrace);
    } else {
      fx->record_decode(obs::DropStage::kConditioning);
    }
  }
}

ConditionedTrace condition(const wifi::CaptureTrace& trace,
                           MeasurementSource source,
                           TimeUs movavg_window_us) {
  DecodeWorkspace ws;
  ConditionedTrace out;
  condition_into(trace, source, movavg_window_us, ws, out);
  return out;
}

}  // namespace wb::reader
