#include "reader/conditioning.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "util/check.h"

#include "util/dsp.h"

namespace wb::reader {

std::vector<double> remove_time_moving_average(
    const std::vector<TimeUs>& ts, const std::vector<double>& xs,
    TimeUs window_us) {
  WB_REQUIRE(ts.size() == xs.size(),
             "one measurement per timestamp is required");
  WB_REQUIRE(window_us > 0, "moving-average window must be positive");
  WB_REQUIRE(std::is_sorted(ts.begin(), ts.end()),
             "capture timestamps must be non-decreasing");
  // Centered window. The paper's receiver subtracts a trailing 400 ms
  // average online; decoding offline we can center the same window, which
  // removes identical drift but avoids the trailing window's
  // data-dependent baseline creep (a trailing average over a frame edge
  // contains a varying mix of modulated and quiescent samples, which can
  // flip the apparent sign of bits after locally imbalanced runs).
  std::vector<double> out(xs.size());
  const TimeUs half = window_us / 2;
  std::size_t head = 0;  // first index inside [t_k - half, t_k + half]
  std::size_t tail = 0;  // one past the last index inside
  double sum = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    while (tail < xs.size() && ts[tail] <= ts[k] + half) {
      sum += xs[tail];
      ++tail;
    }
    while (ts[head] < ts[k] - half) {
      sum -= xs[head];
      ++head;
    }
    const double mean = sum / static_cast<double>(tail - head);
    out[k] = xs[k] - mean;
  }
  return out;
}

ConditionedTrace condition(const wifi::CaptureTrace& trace,
                           MeasurementSource source,
                           TimeUs movavg_window_us) {
  WB_REQUIRE(movavg_window_us > 0, "moving-average window must be positive");
  obs::ScopedTimer timer("reader.conditioning.wall_us");
  ConditionedTrace out;

  // Collect raw series. For CSI, records without CSI (beacons on the
  // paper's NIC) are skipped entirely; for RSSI every record counts.
  std::vector<std::vector<double>> raw;
  const std::size_t num_streams = (source == MeasurementSource::kCsi)
                                      ? wifi::kNumCsiStreams
                                      : phy::kNumAntennas;
  raw.resize(num_streams);
  for (const auto& rec : trace) {
    if (source == MeasurementSource::kCsi && !rec.has_csi) continue;
    out.timestamps.push_back(rec.timestamp_us);
    for (std::size_t s = 0; s < num_streams; ++s) {
      const double v = (source == MeasurementSource::kCsi)
                           ? wifi::stream_csi(rec, s)
                           : rec.rssi_dbm[s];
      raw[s].push_back(v);
    }
  }

  out.streams.resize(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    auto centered =
        remove_time_moving_average(out.timestamps, raw[s], movavg_window_us);
    out.streams[s] = normalize_mad(centered);
    WB_ENSURE(out.streams[s].size() == out.timestamps.size());
  }
  if (auto* m = obs::metrics()) {
    m->counter("reader.conditioning.traces_total").add(1);
    m->counter("reader.conditioning.packets_total")
        .add(out.timestamps.size());
    m->gauge("reader.conditioning.streams_count")
        .set(static_cast<double>(num_streams));
  }
  return out;
}

}  // namespace wb::reader
