// Online uplink decoding: a rolling-buffer wrapper around UplinkDecoder
// for readers that consume capture records as the NIC produces them
// ("while waiting for an incoming transmission", §3.2), rather than
// decoding a recorded trace offline.
//
// The wrapper buffers recent records, periodically scans the not-yet-
// consumed region for a preamble, emits any frame whose sync score clears
// the configured threshold, and trims the buffer so memory stays bounded
// no matter how long the reader runs.
#pragma once

#include <vector>

#include "reader/uplink_decoder.h"

namespace wb::reader {

struct StreamingDecoderConfig {
  /// Frame format / decoding parameters. search_from/search_to are
  /// managed by the wrapper and must be left unset.
  UplinkDecoderConfig decoder{};

  /// Minimum sync score to emit a frame. Pure ambient noise (drift +
  /// measurement noise over a long scan window) reaches ~0.45; frames at
  /// working SNR score 0.8+. 0.6 rejects noise with margin while keeping
  /// most of the plain decoder's range; lower it when pairing with an
  /// outer CRC that discards false frames anyway.
  double sync_threshold = 0.6;

  /// How far (in time) beyond one frame the buffer must extend before a
  /// scan is attempted; also the re-scan cadence. 0 = half a frame.
  TimeUs scan_interval_us = 0;

  /// History retained behind the consumed point (must cover the
  /// conditioning window).
  TimeUs history_us = 1'000'000;
};

class StreamingUplinkDecoder {
 public:
  explicit StreamingUplinkDecoder(StreamingDecoderConfig cfg);

  /// Feed one capture record (timestamps must be non-decreasing); returns
  /// the frames completed by this record (usually none, occasionally one).
  std::vector<UplinkDecodeResult> push(const wifi::CaptureRecord& rec);

  /// Records currently buffered (bounded by history + scan horizon).
  std::size_t buffered() const { return buffer_.size(); }

  /// Total frames emitted so far.
  std::uint64_t frames_emitted() const { return frames_emitted_; }

  const StreamingDecoderConfig& config() const { return cfg_; }

 private:
  TimeUs scan_interval() const;

  StreamingDecoderConfig cfg_;
  wifi::CaptureTrace buffer_;
  TimeUs consumed_until_ = 0;  ///< frames may only start after this
  TimeUs next_scan_at_ = 0;
  std::uint64_t frames_emitted_ = 0;
};

}  // namespace wb::reader
