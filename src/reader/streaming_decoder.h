// Online uplink decoding: a rolling-buffer wrapper around UplinkDecoder
// for readers that consume capture records as the NIC produces them
// ("while waiting for an incoming transmission", §3.2), rather than
// decoding a recorded trace offline.
//
// The wrapper buffers recent records, periodically scans the not-yet-
// consumed region for a preamble, emits any frame whose sync score clears
// the configured threshold, and trims the buffer so memory stays bounded
// no matter how long the reader runs.
#pragma once

#include <vector>

#include "reader/uplink_decoder.h"
#include "util/check.h"

namespace wb::reader {

struct StreamingDecoderConfig {
  /// Frame format / decoding parameters. search_from/search_to are
  /// managed by the wrapper and must be left unset (WB_REQUIRE'd at
  /// construction).
  UplinkDecoderConfig decoder{};

  /// Minimum sync score to emit a frame. Pure ambient noise (drift +
  /// measurement noise over a long scan window) reaches ~0.45; frames at
  /// working SNR score 0.8+. 0.6 rejects noise with margin while keeping
  /// most of the plain decoder's range; lower it when pairing with an
  /// outer CRC that discards false frames anyway.
  double sync_threshold = 0.6;

  /// How far (in time) beyond one frame the buffer must extend before a
  /// scan is attempted; also the re-scan cadence. 0 = half a frame.
  TimeUs scan_interval_us{0};

  /// History retained behind the consumed point. Must cover the
  /// conditioning window (decoder.movavg_window_us) — a shorter history
  /// would trim records conditioning still needs, silently degrading
  /// every later scan (WB_REQUIRE'd at construction).
  TimeUs history_us{1'000'000};
};

/// Receiver of decoded frames for the allocation-free delivery path.
/// on_frame() observes the wrapper's reused scratch result: copy what you
/// need before returning — the reference dies with the call.
class FrameSink {
 public:
  virtual void on_frame(const UplinkDecodeResult& frame) = 0;

 protected:
  ~FrameSink() = default;
};

class StreamingUplinkDecoder {
 public:
  explicit StreamingUplinkDecoder(StreamingDecoderConfig cfg);

  /// Feed one capture record (timestamps must be non-decreasing); returns
  /// the frames completed by this record (usually none, occasionally one).
  /// Scans reuse one decoder instance and one DecodeWorkspace, so the
  /// steady-state scan path does not allocate (DESIGN.md §10).
  std::vector<UplinkDecodeResult> push(const wifi::CaptureRecord& rec);

  /// Allocation-free variant: frames go to `sink.on_frame()` instead of a
  /// returned vector; returns how many frames were emitted. This is the
  /// serving-path API (wb::serve sessions implement FrameSink and copy
  /// payloads into preallocated slots).
  WB_REALTIME std::size_t push(const wifi::CaptureRecord& rec,
                               FrameSink& sink);

  /// Final scan over the not-yet-consumed tail of the buffer. push() only
  /// scans when a *later* record arrives, so when traffic stops, any frame
  /// that ended within a scan interval of the last record would otherwise
  /// be stranded forever. Call when the capture ends (or goes quiet) to
  /// drain those frames; idempotent — a second flush() emits nothing new.
  std::vector<UplinkDecodeResult> flush();

  /// Sink variant of flush(); returns how many frames were emitted.
  std::size_t flush(FrameSink& sink);

  /// Return to the freshly constructed state while keeping the buffer's
  /// and workspace's capacity: clears buffered records, the consumed/scan
  /// cursors, and the emit counter. Lets a serving layer reuse one
  /// decoder (and its warmed allocations) across session attach cycles.
  void reset();

  /// Records currently buffered (bounded by history + scan horizon).
  std::size_t buffered() const { return buffer_.size(); }

  /// Total frames emitted so far.
  std::uint64_t frames_emitted() const { return frames_emitted_; }

  const StreamingDecoderConfig& config() const { return cfg_; }

 private:
  TimeUs scan_interval() const;

  /// One decode over [consumed_until_, search_to]; on success emits into
  /// `sink` and advances consumed_until_ past the frame.
  bool scan(TimeUs search_to_us, FrameSink& sink);

  std::size_t push_impl(const wifi::CaptureRecord& rec, FrameSink& sink);
  std::size_t flush_impl(FrameSink& sink);

  /// Drop records no future frame needs (history window behind the
  /// consumed point).
  void trim_history();

  StreamingDecoderConfig cfg_;
  UplinkDecoder dec_;          ///< reused across scans (search window slides)
  DecodeWorkspace ws_;         ///< reused across scans
  UplinkDecodeResult scratch_; ///< reused scan result
  wifi::CaptureTrace buffer_;
  TimeUs consumed_until_{0};  ///< frames may only start after this
  TimeUs next_scan_at_{0};
  std::uint64_t frames_emitted_ = 0;
  /// flush() already reported this session's drained tail (keeps the
  /// idempotent second flush() from double-counting the drop; reset when
  /// push() buffers new records).
  bool drained_reported_ = false;
};

}  // namespace wb::reader
