// Reusable scratch storage for the reader decode hot path (DESIGN.md §10).
//
// Every experiment grid point and every streaming scan runs the same
// pipeline — conditioning, preamble correlation, MRC, thresholding — and
// each stage used to allocate its working vectors per call (90 CSI streams
// of per-packet doubles, fresh every decode). A DecodeWorkspace owns those
// buffers instead; the pipeline resizes them (capacity is kept) so a
// warmed-up workspace makes the whole decode allocation-free.
//
// Ownership rules:
//   * The workspace is plain scratch: no stage reads a buffer it did not
//     write in the same call, and nothing outlives the call that filled it
//     except capacity.
//   * One workspace per decoder *instance* per thread. Workspaces are not
//     thread-safe; parallel sweeps (wb::runner) use one per task, matching
//     the per-task MetricsRegistry pattern.
//   * Results written through the `*_into` APIs reuse the caller's result
//     vectors the same way (assign/clear keep capacity), so a reused
//     result object also stops allocating once warm.
#pragma once

#include <cstddef>
#include <vector>

#include "reader/conditioning.h"
#include "util/units.h"

namespace wb::reader {

/// Mean/count of the packets binned into one bit or chip slot (shared by
/// the plain and coded decoders; see UplinkDecoder::bin_slots).
struct SlotStat {
  double mean = 0.0;
  std::size_t count = 0;
};

struct DecodeWorkspace {
  // -- conditioning (condition_into) --
  std::vector<std::vector<double>> raw;  ///< [stream][packet] SoA collection
  std::vector<double> centered;          ///< moving-average-removal output

  // -- frame sync (find_frame / preamble correlation) --
  std::vector<SlotStat> slots;           ///< bin_slots_into scratch
  std::vector<double> corrs;             ///< per-stream preamble correlation
  std::vector<std::size_t> order;        ///< stream ranking scratch
  std::vector<std::size_t> best_streams; ///< selected streams of the best tau
  std::vector<double> best_polarity;     ///< their correlation signs

  // -- MRC + thresholding (decode_conditioned_into) --
  std::vector<double> y;    ///< combined signal over the frame interval
  std::vector<TimeUs> yt;   ///< its packet timestamps
  std::vector<int> votes_one;
  std::vector<int> votes_zero;
  std::vector<double> slot_sum;
  std::vector<int> slot_n;

  // -- whole-trace buffers reused across decodes --
  ConditionedTrace conditioned;  ///< decode(trace, ws) conditioning output
  ConditionedTrace clipped;      ///< coded decoder's winsorised copy
};

}  // namespace wb::reader
