// Reusable scratch storage for the reader decode hot path (DESIGN.md §10).
//
// Every experiment grid point and every streaming scan runs the same
// pipeline — conditioning, preamble correlation, MRC, thresholding — and
// each stage used to allocate its working vectors per call (90 CSI streams
// of per-packet doubles, fresh every decode). A DecodeWorkspace owns those
// buffers instead; the pipeline resizes them (capacity is kept) so a
// warmed-up workspace makes the whole decode allocation-free.
//
// Ownership rules:
//   * The workspace is plain scratch: no stage reads a buffer it did not
//     write in the same call, and nothing outlives the call that filled it
//     except capacity.
//   * One workspace per decoder *instance* per thread. Workspaces are not
//     thread-safe; parallel sweeps (wb::runner) use one per task, matching
//     the per-task MetricsRegistry pattern.
//   * Results written through the `*_into` APIs reuse the caller's result
//     vectors the same way (assign/clear keep capacity), so a reused
//     result object also stops allocating once warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "reader/conditioning.h"
#include "util/units.h"

namespace wb::reader {

/// Mean/count of the packets binned into one bit or chip slot (shared by
/// the plain and coded decoders; see UplinkDecoder::bin_slots).
struct SlotStat {
  double mean = 0.0;
  std::size_t count = 0;
};

struct DecodeWorkspace {
  // -- conditioning (condition_into, DESIGN.md §15) --
  // Row-major [packet][lane] matrices: one row per usable record, one lane
  // per stream, the stride padded up to a multiple of simd::kLanes so the
  // batched kernels run branch-free (padding lanes carry zeros).
  std::vector<double> raw_rows;       ///< interleaved raw collection
  std::vector<double> centered_rows;  ///< kernel output (normalised in place)
  std::vector<double> row_sums;       ///< per-lane window-sum scratch
  std::vector<double> row_mads;       ///< per-lane MAD divisors

  // -- frame sync (find_frame / preamble correlation) --
  std::vector<SlotStat> slots;           ///< bin_slots_into scratch
  std::vector<double> corrs;             ///< per-stream preamble correlation

  // Stream-batched slot binning (UplinkDecoder::bin_window_into): the
  // timestamp→slot map and per-slot packet counts are shared by every
  // stream of a window, so they are computed once per candidate start.
  std::vector<std::uint32_t> bin_slot_of;  ///< slot of each window packet
  std::vector<std::uint32_t> bin_count;    ///< packets binned per slot
  std::vector<double> bin_sums;            ///< per-slot sums of one stream
  std::size_t bin_first = 0;   ///< trace index of the window's first packet
  std::size_t bin_nslots = 0;  ///< slots in the prepared window
  std::size_t bin_filled = 0;  ///< slots with at least one packet
  std::vector<std::size_t> order;        ///< stream ranking scratch
  std::vector<std::size_t> best_streams; ///< selected streams of the best tau
  std::vector<double> best_polarity;     ///< their correlation signs

  // -- MRC + thresholding (decode_conditioned_into) --
  std::vector<double> y;    ///< combined signal over the frame interval
  std::vector<TimeUs> yt;   ///< its packet timestamps
  std::vector<int> votes_one;
  std::vector<int> votes_zero;
  std::vector<double> slot_sum;
  std::vector<int> slot_n;

  // -- whole-trace buffers reused across decodes --
  ConditionedTrace conditioned;  ///< decode(trace, ws) conditioning output
  ConditionedTrace clipped;      ///< coded decoder's winsorised copy
};

}  // namespace wb::reader
